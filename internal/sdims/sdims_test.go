package sdims

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/netem"
)

func system(t *testing.T, hosts int, seed int64) *System {
	t.Helper()
	sim := eventsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	p := netem.PaperTopology(hosts)
	p.Stubs = 8
	p.Transits = 2
	topo := netem.GenerateTransitStub(p, rng)
	net := netem.New(sim, topo)
	s := New(net, DefaultConfig())
	for i := 0; i < hosts; i++ {
		s.SetValue(i, 1)
	}
	s.Start()
	return s
}

func TestAggregateConvergesToNodeCount(t *testing.T) {
	s := system(t, 60, 1)
	s.Sim.RunFor(60 * time.Second)
	v, c := s.RootValue()
	if v != 60 || c != 60 {
		t.Fatalf("root aggregate = %v (%d), want 60", v, c)
	}
}

func TestProbeReadsAggregate(t *testing.T) {
	s := system(t, 40, 2)
	s.Sim.RunFor(40 * time.Second)
	s.Probe(7)
	s.Sim.RunFor(2 * time.Second)
	if s.LastProbe.Count < 35 {
		t.Fatalf("probe count = %d, want ~40", s.LastProbe.Count)
	}
}

// During churn, re-parenting plus leases produces over-counting: the
// behaviour Figure 16 shows ("completeness exceeds 100%, hitting almost
// 180%").
func TestFailuresCauseOvercounting(t *testing.T) {
	s := system(t, 80, 3)
	s.Sim.RunFor(60 * time.Second)
	rng := rand.New(rand.NewSource(3))
	// Repeatedly fail and recover random subsets.
	over := 0.0
	for round := 0; round < 6; round++ {
		down := map[int]bool{}
		for len(down) < 16 {
			p := rng.Intn(80)
			if !down[p] {
				down[p] = true
				s.Net.SetDown(s.hosts[p], true)
			}
		}
		s.Sim.RunFor(30 * time.Second)
		for p := range down {
			s.Net.SetDown(s.hosts[p], false)
		}
		s.Sim.RunFor(30 * time.Second)
		v, _ := s.RootValue()
		if frac := v / 80; frac > over {
			over = frac
		}
	}
	if over <= 1.02 {
		t.Fatalf("max completeness %.2f; churn should over-count past 100%%", over)
	}
}

func TestBandwidthSubstantial(t *testing.T) {
	s := system(t, 60, 4)
	s.Sim.RunFor(60 * time.Second)
	total := s.Net.Accounting().TotalAllBytes()
	if total == 0 {
		t.Fatal("no traffic accounted")
	}
	// Publishes every 5s with immediate propagation: at least hosts/5
	// update messages per second crossing multiple links.
	mean := s.Net.Accounting().MeanMbps(20*time.Second, 60*time.Second)
	if mean <= 0 {
		t.Fatalf("mean load = %v", mean)
	}
}

func TestRecoveryRestoresCount(t *testing.T) {
	s := system(t, 50, 5)
	s.Sim.RunFor(45 * time.Second)
	for p := 10; p < 20; p++ {
		s.Net.SetDown(s.hosts[p], true)
	}
	s.Sim.RunFor(90 * time.Second)
	for p := 10; p < 20; p++ {
		s.Net.SetDown(s.hosts[p], false)
	}
	s.Sim.RunFor(180 * time.Second)
	v, _ := s.RootValue()
	if v < 45 {
		t.Fatalf("aggregate %v after recovery, want ~50", v)
	}
}
