// Package sdims implements the aggregating snapshot-query baseline the
// paper compares Mortar against (§7.2.3): SDIMS (Yalagandula & Dahlin),
// built over a Pastry-style DHT. Each attribute is aggregated up the tree
// induced by DHT routes toward the attribute key's root. The update-up
// policy ensures only the root holds the aggregate; probes read it.
//
// The behaviours the comparison hinges on are reproduced faithfully:
//   - aggregation trees follow DHT routing state, so stale liveness beliefs
//     re-parent subtrees while old partials persist until their lease
//     expires — over-counting past 100% completeness during churn;
//   - every publish propagates immediately up the whole path (no
//     in-network batching), plus periodic pings, leaf and route
//     maintenance — the bandwidth footprint the paper measured at ~5x
//     Mortar's while probing five times less often.
package sdims

import (
	"math/rand"
	"time"

	"repro/internal/eventsim"
	"repro/internal/netem"
	"repro/internal/pastry"
)

// Config carries the timer settings from §7.2.3: "the ping neighbor period
// is 20 seconds, the lease period is 30 seconds, leaf maintenance is 10
// seconds and route maintenance is 60 seconds. SDIMS nodes publish a value
// every five seconds and we probe for the result every 5 seconds."
type Config struct {
	PingPeriod    time.Duration
	Lease         time.Duration
	LeafMaint     time.Duration
	RouteMaint    time.Duration
	PublishPeriod time.Duration
	LeafSize      int
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		PingPeriod:    20 * time.Second,
		Lease:         30 * time.Second,
		LeafMaint:     10 * time.Second,
		RouteMaint:    60 * time.Second,
		PublishPeriod: 5 * time.Second,
		LeafSize:      8,
	}
}

// message types
type msgUpdate struct {
	Key   pastry.ID
	From  int
	Value float64
	Count int
}

type msgPing struct{ Seq uint64 }
type msgPong struct{ Seq uint64 }

// msgProbe and msgProbeReply implement the snapshot read.
type msgProbe struct{ Key pastry.ID }
type msgProbeReply struct {
	Key   pastry.ID
	Value float64
	Count int
}

const (
	updateSize = 92 // key + value + version + Pastry header
	pingSize   = 48
	probeSize  = 56
)

// System is an SDIMS deployment: one node per host of the topology.
type System struct {
	Sim *eventsim.Sim
	Net *netem.Network
	Cfg Config

	ring   *pastry.Ring
	nodes  []*node
	hosts  []netem.NodeID
	peerOf map[netem.NodeID]int

	// Key is the aggregation attribute all experiments use.
	Key pastry.ID

	// LastProbe holds the most recent probe reply (value, count).
	LastProbe struct {
		Value float64
		Count int
		At    time.Duration
	}
}

type node struct {
	sys  *System
	id   int
	st   *pastry.State
	down func() bool

	value    float64 // local contribution
	hasValue bool
	children map[int]childEntry
	pingSeq  uint64
	awaiting map[int]uint64 // peer -> ping seq outstanding
	missed   map[int]int
}

type childEntry struct {
	value   float64
	count   int
	expires time.Duration
}

// New builds an SDIMS system over the network's hosts.
func New(net *netem.Network, cfg Config) *System {
	hosts := net.Topology().Hosts()
	sim := net.Sim()
	rng := rand.New(rand.NewSource(sim.Rand().Int63()))
	s := &System{
		Sim:    sim,
		Net:    net,
		Cfg:    cfg,
		ring:   pastry.NewRing(len(hosts), rng),
		hosts:  hosts,
		peerOf: map[netem.NodeID]int{},
		Key:    pastry.ID(rng.Uint64()),
	}
	for i, h := range hosts {
		s.peerOf[h] = i
		n := &node{
			sys:      s,
			id:       i,
			st:       pastry.NewState(s.ring, i, cfg.LeafSize, rand.New(rand.NewSource(rng.Int63()))),
			children: map[int]childEntry{},
			awaiting: map[int]uint64{},
			missed:   map[int]int{},
		}
		s.nodes = append(s.nodes, n)
		h := h
		net.Handle(h, n.deliver)
	}
	return s
}

// Start arms every node's timers with per-node phase jitter.
func (s *System) Start() {
	rng := rand.New(rand.NewSource(s.Sim.Rand().Int63()))
	for _, n := range s.nodes {
		n := n
		jitter := func(d time.Duration) time.Duration {
			return d + time.Duration(rng.Int63n(int64(d)))
		}
		s.Sim.After(jitter(s.Cfg.PublishPeriod), func() { n.publishLoop() })
		s.Sim.After(jitter(s.Cfg.PingPeriod), func() { n.pingLoop() })
		s.Sim.After(jitter(s.Cfg.LeafMaint), func() { n.leafMaintLoop() })
		s.Sim.After(jitter(s.Cfg.RouteMaint), func() { n.routeMaintLoop() })
	}
}

// SetValue sets a node's local contribution (the experiments publish the
// constant 1 to count peers).
func (s *System) SetValue(peer int, v float64) {
	s.nodes[peer].value = v
	s.nodes[peer].hasValue = true
}

// Probe issues a snapshot probe from the given peer; the reply lands in
// LastProbe.
func (s *System) Probe(from int) {
	n := s.nodes[from]
	next, isRoot := n.st.NextHop(s.Key)
	if isRoot {
		v, c := n.subtotal()
		s.LastProbe.Value = v
		s.LastProbe.Count = c
		s.LastProbe.At = s.Sim.Now()
		return
	}
	s.send(from, next, netem.ClassControl, probeSize, msgProbe{Key: s.Key})
}

// RootValue reads the aggregate at the current true root directly (the
// experiment's ground-truth-free measurement; equivalent to a probe that
// found the root).
func (s *System) RootValue() (float64, int) {
	root := s.ring.RootFor(s.Key, func(p int) bool { return !s.Net.Down(s.hosts[p]) })
	if root < 0 {
		return 0, 0
	}
	return s.nodes[root].subtotal()
}

func (s *System) send(from, to int, class netem.TrafficClass, size int, payload any) {
	s.Net.Send(s.hosts[from], s.hosts[to], class, size, payload)
}

func (n *node) isDown() bool { return n.sys.Net.Down(n.sys.hosts[n.id]) }

// subtotal is this node's own value plus unexpired child partials.
func (n *node) subtotal() (float64, int) {
	v := n.value
	c := 0
	if n.hasValue {
		c = 1
	}
	now := n.sys.Sim.Now()
	for _, e := range n.children {
		if e.expires > now {
			v += e.value
			c += e.count
		}
	}
	return v, c
}

// publishLoop sends the subtotal one hop toward the key root. The receiving
// parent updates its cache and immediately propagates upward — SDIMS does
// not wait to batch children ("nodes fail to wait before sending tuples to
// their parents").
func (n *node) publishLoop() {
	defer n.sys.Sim.After(n.sys.Cfg.PublishPeriod, func() { n.publishLoop() })
	n.publish()
}

func (n *node) publish() {
	// Disconnected nodes keep trying; the network drops their traffic.
	next, isRoot := n.st.NextHop(n.sys.Key)
	if isRoot {
		return // root holds the aggregate
	}
	v, c := n.subtotal()
	n.sys.send(n.id, next, netem.ClassData, updateSize, msgUpdate{
		Key: n.sys.Key, From: n.id, Value: v, Count: c,
	})
}

func (n *node) pingLoop() {
	defer n.sys.Sim.After(n.sys.Cfg.PingPeriod, func() { n.pingLoop() })
	for _, p := range n.st.Neighbors() {
		if seq, ok := n.awaiting[p]; ok && seq > 0 {
			// Previous ping unanswered.
			n.missed[p]++
			if n.missed[p] >= 2 {
				n.st.MarkDead(p)
				delete(n.awaiting, p)
				delete(n.missed, p)
				// Reactive recovery: repair the routing state now, which
				// costs a burst of lookups (the bandwidth spikes of
				// Figure 16).
				n.st.Rebuild()
				n.repairTraffic()
				continue
			}
		}
		n.pingSeq++
		n.awaiting[p] = n.pingSeq
		n.sys.send(n.id, p, netem.ClassControl, pingSize, msgPing{Seq: n.pingSeq})
	}
}

// repairTraffic charges the cost of re-populating routing entries from
// other nodes (state exchange with a handful of peers).
func (n *node) repairTraffic() {
	nb := n.st.Neighbors()
	for i, p := range nb {
		if i >= 6 {
			break
		}
		n.sys.send(n.id, p, netem.ClassControl, 6*updateSize, msgPing{Seq: 0})
	}
}

func (n *node) leafMaintLoop() {
	defer n.sys.Sim.After(n.sys.Cfg.LeafMaint, func() { n.leafMaintLoop() })
	// Exchange leaf sets with one neighbor; recovered peers are given
	// another chance (beliefs age out optimistically on maintenance).
	for _, p := range n.st.Neighbors() {
		n.sys.send(n.id, p, netem.ClassControl, 2*updateSize, msgPing{Seq: 0})
		break
	}
	n.reconsiderDead()
	n.st.Rebuild()
}

func (n *node) routeMaintLoop() {
	defer n.sys.Sim.After(n.sys.Cfg.RouteMaint, func() { n.routeMaintLoop() })
	nb := n.st.Neighbors()
	for i, p := range nb {
		if i >= 4 {
			break
		}
		n.sys.send(n.id, p, netem.ClassControl, 3*updateSize, msgPing{Seq: 0})
	}
	n.reconsiderDead()
	n.st.Rebuild()
}

// reconsiderDead probes one believed-dead peer so recovered nodes rejoin.
func (n *node) reconsiderDead() {
	for p := 0; p < len(n.sys.nodes); p++ {
		if n.st.BelievedDead(p) && !n.sys.Net.Down(n.sys.hosts[p]) {
			n.st.MarkAlive(p)
			break
		}
	}
}

func (n *node) deliver(from netem.NodeID, payload any, size int) {
	src := n.sys.peerOf[from]
	switch m := payload.(type) {
	case msgUpdate:
		n.children[m.From] = childEntry{
			value:   m.Value,
			count:   m.Count,
			expires: n.sys.Sim.Now() + n.sys.Cfg.Lease,
		}
		// Immediate upward propagation.
		n.publish()
	case msgPing:
		if m.Seq > 0 {
			n.sys.send(n.id, src, netem.ClassControl, pingSize, msgPong{Seq: m.Seq})
		}
	case msgPong:
		if n.awaiting[src] == m.Seq {
			delete(n.awaiting, src)
			n.missed[src] = 0
		}
		n.st.MarkAlive(src)
	case msgProbe:
		next, isRoot := n.st.NextHop(m.Key)
		if isRoot {
			v, c := n.subtotal()
			n.sys.LastProbe.Value = v
			n.sys.LastProbe.Count = c
			n.sys.LastProbe.At = n.sys.Sim.Now()
			return
		}
		n.sys.send(n.id, next, netem.ClassControl, probeSize, m)
	case msgProbeReply:
		n.sys.LastProbe.Value = m.Value
		n.sys.LastProbe.Count = m.Count
		n.sys.LastProbe.At = n.sys.Sim.Now()
	}
}
