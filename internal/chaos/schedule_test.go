package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) *Schedule {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseValid(t *testing.T) {
	s := mustParse(t, `{
		"scenario": "fig11-kill40",
		"seed": 7,
		"sample_ms": 250,
		"events": [
			{"kind": "kill", "at_ms": 1000, "frac": 0.4, "stagger_ms": 10},
			{"kind": "recover", "at_ms": 5000, "all": true, "stagger_ms": 10},
			{"kind": "churn", "at_ms": 6000, "until_ms": 8000, "every_ms": 500, "count": 2},
			{"kind": "loss-ramp", "at_ms": 9000, "until_ms": 10000, "from": 0, "to": 0.2, "step_ms": 250},
			{"kind": "peer-loss", "at_ms": 10500, "peers": [3, 4], "loss": 0.5}
		]
	}`)
	if s.Scenario != "fig11-kill40" || s.Seed != 7 || len(s.Events) != 5 {
		t.Fatalf("unexpected schedule: %+v", s)
	}
	if got := s.SamplePeriod(); got != 250*time.Millisecond {
		t.Fatalf("SamplePeriod = %v", got)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"negative at_ms",
			`{"scenario":"x","events":[{"kind":"kill","at_ms":-5,"frac":0.1}]}`,
			"negative"},
		{"empty interval",
			`{"scenario":"x","events":[{"kind":"churn","at_ms":500,"until_ms":500,"every_ms":100,"count":1}]}`,
			"empty or negative"},
		{"inverted interval",
			`{"scenario":"x","events":[{"kind":"loss-ramp","at_ms":900,"until_ms":300,"from":0,"to":0.1,"step_ms":100}]}`,
			"empty or negative"},
		{"overlapping same-kind intervals",
			`{"scenario":"x","events":[
				{"kind":"churn","at_ms":0,"until_ms":2000,"every_ms":500,"count":1},
				{"kind":"churn","at_ms":1500,"until_ms":3000,"every_ms":500,"count":1}]}`,
			"overlapping"},
		{"overlapping same-socket outages",
			`{"scenario":"x","events":[
				{"kind":"socket-outage","at_ms":0,"until_ms":2000,"socket":1},
				{"kind":"socket-outage","at_ms":1000,"until_ms":3000,"socket":1}]}`,
			"overlapping"},
		{"kill with both peers and frac",
			`{"scenario":"x","events":[{"kind":"kill","at_ms":0,"peers":[1],"frac":0.5}]}`,
			"exactly one"},
		{"kill with neither",
			`{"scenario":"x","events":[{"kind":"kill","at_ms":0}]}`,
			"exactly one"},
		{"frac above one",
			`{"scenario":"x","events":[{"kind":"kill","at_ms":0,"frac":1.5}]}`,
			"outside [0, 1]"},
		{"until_ms on point event",
			`{"scenario":"x","events":[{"kind":"kill","at_ms":0,"until_ms":100,"frac":0.1}]}`,
			"until_ms only applies"},
		{"unknown kind",
			`{"scenario":"x","events":[{"kind":"explode","at_ms":0}]}`,
			"unknown kind"},
		{"unknown field",
			`{"scenario":"x","events":[{"kind":"kill","at_ms":0,"frac":0.1,"fraction":0.5}]}`,
			"unknown field"},
		{"bad scenario name",
			`{"scenario":"a/b","events":[]}`,
			"must be a"},
		{"negative peer",
			`{"scenario":"x","events":[{"kind":"peer-loss","at_ms":0,"peers":[-2],"loss":0.1}]}`,
			"negative peer"},
		{"loss outside range",
			`{"scenario":"x","events":[{"kind":"peer-loss","at_ms":0,"peers":[1],"loss":1.2}]}`,
			"outside [0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// Different-kind intervals may overlap: churn during a loss ramp is a
// legitimate compound scenario.
func TestParseAllowsCrossKindOverlap(t *testing.T) {
	mustParse(t, `{"scenario":"x","events":[
		{"kind":"churn","at_ms":0,"until_ms":2000,"every_ms":500,"count":1},
		{"kind":"loss-ramp","at_ms":500,"until_ms":1500,"from":0,"to":0.1,"step_ms":250},
		{"kind":"socket-outage","at_ms":0,"until_ms":1000,"socket":0},
		{"kind":"socket-outage","at_ms":500,"until_ms":1500,"socket":1}]}`)
}

func TestExpandDeterministic(t *testing.T) {
	src := `{
		"scenario": "det",
		"seed": 42,
		"events": [
			{"kind": "kill", "at_ms": 100, "frac": 0.4, "stagger_ms": 5},
			{"kind": "churn", "at_ms": 500, "until_ms": 1500, "every_ms": 250, "count": 3},
			{"kind": "recover", "at_ms": 2000, "all": true, "stagger_ms": 5},
			{"kind": "loss-ramp", "at_ms": 2500, "until_ms": 3000, "from": 0, "to": 0.3, "step_ms": 100}
		]
	}`
	groups := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8, 9}}
	a1, err := mustParse(t, src).Expand(50, groups)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	a2, err := mustParse(t, src).Expand(50, groups)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same schedule expanded differently:\n%v\nvs\n%v", a1, a2)
	}
	if len(a1) == 0 {
		t.Fatal("empty expansion")
	}

	// A different seed must shuffle the victim draw.
	s3 := mustParse(t, src)
	s3.Seed = 43
	a3, err := s3.Expand(50, groups)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if reflect.DeepEqual(a1, a3) {
		t.Fatal("seed change did not alter the expansion")
	}
}

func TestExpandInvariants(t *testing.T) {
	s := mustParse(t, `{
		"scenario": "inv",
		"seed": 11,
		"events": [
			{"kind": "kill", "at_ms": 0, "frac": 0.4, "stagger_ms": 2},
			{"kind": "churn", "at_ms": 1000, "until_ms": 2000, "every_ms": 200, "count": 4},
			{"kind": "recover", "at_ms": 3000, "all": true, "stagger_ms": 2}
		]
	}`)
	const n = 100
	acts, err := s.Expand(n, nil)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	live := n
	down := make([]bool, n)
	for i, a := range acts {
		if i > 0 && a.At < acts[i-1].At {
			t.Fatalf("actions out of time order at %d: %v after %v", i, a.At, acts[i-1].At)
		}
		switch a.Kind {
		case ActKill:
			if a.Peer == 0 {
				t.Fatal("schedule killed root peer 0")
			}
			if down[a.Peer] {
				t.Fatalf("double kill of peer %d", a.Peer)
			}
			down[a.Peer] = true
			live--
		case ActRecover:
			if !down[a.Peer] {
				t.Fatalf("recover of live peer %d", a.Peer)
			}
			down[a.Peer] = false
			live++
		}
		if a.Live != live {
			t.Fatalf("action %d stamped live=%d, replay says %d", i, a.Live, live)
		}
	}
	if live != n {
		t.Fatalf("schedule ends with %d live, want full recovery to %d", live, n)
	}

	// 40% of 100 with a live root: exactly 40 kills.
	kills := 0
	for _, a := range acts {
		if a.Kind == ActKill && a.At < 1*time.Second {
			kills++
		}
	}
	if kills != 40 {
		t.Fatalf("frac 0.4 over 100 peers drew %d initial kills, want 40", kills)
	}

	start, end, ok := FaultSpan(acts)
	if !ok || start != 0 || end < 3*time.Second {
		t.Fatalf("FaultSpan = %v, %v, %v", start, end, ok)
	}
}

func TestExpandSocketOutage(t *testing.T) {
	s := mustParse(t, `{
		"scenario": "sock",
		"seed": 3,
		"events": [{"kind": "socket-outage", "at_ms": 100, "until_ms": 400, "socket": 1}]
	}`)
	groups := [][]int{{0, 1, 2}, {3, 4, 5}}
	acts, err := s.Expand(6, groups)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var killed, recovered []int
	for _, a := range acts {
		switch a.Kind {
		case ActKill:
			killed = append(killed, a.Peer)
		case ActRecover:
			recovered = append(recovered, a.Peer)
		}
	}
	want := []int{3, 4, 5}
	if !reflect.DeepEqual(killed, want) || !reflect.DeepEqual(recovered, want) {
		t.Fatalf("outage killed %v recovered %v, want group %v both times", killed, recovered, want)
	}

	// The root's group loses everyone but peer 0.
	s.Events[0].Socket = 0
	acts, err = s.Expand(6, groups)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	for _, a := range acts {
		if a.Peer == 0 {
			t.Fatal("outage on the root's socket group gated peer 0")
		}
	}
	if len(acts) != 4 {
		t.Fatalf("expected 2 kills + 2 recoveries, got %d actions", len(acts))
	}

	// Outage against a group the runtime doesn't have must fail loudly.
	s.Events[0].Socket = 9
	if _, err := s.Expand(6, groups); err == nil {
		t.Fatal("socket index past the group list was accepted")
	}
	if _, err := s.Expand(6, nil); err == nil {
		t.Fatal("socket-outage with no groups was accepted")
	}
}

func TestExpandLossRampEndsAtTarget(t *testing.T) {
	s := mustParse(t, `{
		"scenario": "ramp",
		"events": [{"kind": "loss-ramp", "at_ms": 0, "until_ms": 1000, "from": 0.1, "to": 0.5, "step_ms": 300}]
	}`)
	acts, err := s.Expand(4, nil)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(acts) < 2 {
		t.Fatalf("ramp expanded to %d actions", len(acts))
	}
	first, last := acts[0], acts[len(acts)-1]
	if first.Kind != ActLoss || first.Loss != 0.1 {
		t.Fatalf("ramp starts at %+v", first)
	}
	if last.Kind != ActLoss || last.Loss != 0.5 || last.At != time.Second {
		t.Fatalf("ramp ends at %+v, want loss 0.5 at 1s", last)
	}
	for i := 1; i < len(acts); i++ {
		if acts[i].Loss < acts[i-1].Loss {
			t.Fatalf("ramp not monotonic: %v", acts)
		}
	}
}

func TestExpandPeerBounds(t *testing.T) {
	s := mustParse(t, `{"scenario":"x","events":[{"kind":"kill","at_ms":0,"peers":[7]}]}`)
	if _, err := s.Expand(4, nil); err == nil {
		t.Fatal("peer index past federation size was accepted")
	}
}
