package chaos

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeInjector records gate and loss operations; localOnly simulates one
// process of a multi-process federation.
type fakeInjector struct {
	mu        sync.Mutex
	n         int
	localOnly map[int]bool // nil = everything local
	down      map[int]bool
	loss      float64
	peerLoss  map[int]float64
	groups    [][]int
}

func newFakeInjector(n int) *fakeInjector {
	return &fakeInjector{n: n, down: map[int]bool{}, peerLoss: map[int]float64{}}
}

func (f *fakeInjector) NumPeers() int { return f.n }
func (f *fakeInjector) SetDown(p int, d bool) {
	f.mu.Lock()
	f.down[p] = d
	f.mu.Unlock()
}
func (f *fakeInjector) SetLoss(p float64) {
	f.mu.Lock()
	f.loss = p
	f.mu.Unlock()
}
func (f *fakeInjector) SetPeerLoss(peer int, p float64) {
	f.mu.Lock()
	f.peerLoss[peer] = p
	f.mu.Unlock()
}
func (f *fakeInjector) AddressGroups() [][]int { return f.groups }
func (f *fakeInjector) Local(p int) bool {
	if f.localOnly == nil {
		return true
	}
	return f.localOnly[p]
}

func TestRunnerRepliesSchedule(t *testing.T) {
	inj := newFakeInjector(10)
	s := mustParse(t, `{
		"scenario": "run",
		"seed": 5,
		"events": [
			{"kind": "kill", "at_ms": 0, "peers": [2, 3]},
			{"kind": "peer-loss", "at_ms": 10, "peers": [4], "loss": 0.25},
			{"kind": "loss-ramp", "at_ms": 20, "until_ms": 60, "from": 0, "to": 0.1, "step_ms": 20},
			{"kind": "recover", "at_ms": 80, "peers": [2]}
		]
	}`)
	r, err := Start(inj, s)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	select {
	case <-r.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("runner did not finish")
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.down[3] || inj.down[2] {
		t.Fatalf("gate state %v, want 3 down and 2 recovered", inj.down)
	}
	if inj.peerLoss[4] != 0.25 {
		t.Fatalf("peer loss %v", inj.peerLoss)
	}
	if inj.loss != 0.1 {
		t.Fatalf("global loss %g, want ramp end 0.1", inj.loss)
	}
	if r.Live() != 9 {
		t.Fatalf("Live = %d after 2 kills + 1 recover of 10, want 9", r.Live())
	}
	if r.Applied() != len(r.Actions()) {
		t.Fatalf("applied %d of %d actions", r.Applied(), len(r.Actions()))
	}
}

// Two processes expanding the same schedule apply disjoint local slices
// whose union is the full fault pattern, and agree on Live throughout.
func TestRunnerLocalityPartition(t *testing.T) {
	const n = 20
	src := `{
		"scenario": "split",
		"seed": 9,
		"events": [
			{"kind": "kill", "at_ms": 0, "frac": 0.5},
			{"kind": "recover", "at_ms": 50, "all": true}
		]
	}`
	left := newFakeInjector(n)
	left.localOnly = map[int]bool{}
	right := newFakeInjector(n)
	right.localOnly = map[int]bool{}
	for p := 0; p < n; p++ {
		if p < n/2 {
			left.localOnly[p] = true
		} else {
			right.localOnly[p] = true
		}
	}
	rl, err := Start(left, mustParse(t, src))
	if err != nil {
		t.Fatalf("Start left: %v", err)
	}
	rr, err := Start(right, mustParse(t, src))
	if err != nil {
		t.Fatalf("Start right: %v", err)
	}
	rl.Wait()
	rr.Wait()
	for p := 0; p < n; p++ {
		_, inLeft := left.down[p]
		_, inRight := right.down[p]
		if inLeft && inRight {
			t.Fatalf("peer %d gated in both processes", p)
		}
		if inLeft && p >= n/2 || inRight && p < n/2 {
			t.Fatalf("peer %d gated in the wrong process", p)
		}
	}
	// Same expansion → same final live count in both processes.
	if rl.Live() != n || rr.Live() != n {
		t.Fatalf("live after recover-all: left %d right %d, want %d", rl.Live(), rr.Live(), n)
	}
	// Union of gate operations covers every victim exactly once.
	victims := 0
	for _, a := range rl.Actions() {
		if a.Kind == ActKill {
			victims++
		}
	}
	if got := len(left.down) + len(right.down); got != victims {
		t.Fatalf("union gated %d peers, expansion killed %d", got, victims)
	}
}

func TestRunnerStopAbandonsTail(t *testing.T) {
	inj := newFakeInjector(4)
	r := StartActions(inj, []Action{
		{At: 0, Kind: ActKill, Peer: 1, Live: 3},
		{At: time.Hour, Kind: ActRecover, Peer: 1, Live: 4},
	})
	deadline := time.Now().Add(2 * time.Second)
	for r.Applied() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	if r.Applied() != 1 {
		t.Fatalf("applied %d actions, want the first only", r.Applied())
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.down[1] {
		t.Fatal("first action did not apply before Stop")
	}
}

func TestRecorderCurveAndSummary(t *testing.T) {
	var mu sync.Mutex
	live, comp := 10, 10
	probe := Probe{
		Live: func() int { mu.Lock(); defer mu.Unlock(); return live },
		Completeness: func() (int64, int) {
			mu.Lock()
			defer mu.Unlock()
			return 1, comp
		},
	}
	rec := NewRecorder("unit", 10, 5*time.Millisecond, probe)
	rec.Start()
	time.Sleep(40 * time.Millisecond)
	faultStart := time.Now()
	mu.Lock()
	live, comp = 6, 5
	mu.Unlock()
	time.Sleep(40 * time.Millisecond)
	faultEnd := time.Now()
	mu.Lock()
	live, comp = 10, 10
	mu.Unlock()
	time.Sleep(40 * time.Millisecond)
	rec.Stop()

	c := rec.Curve(faultStart, faultEnd)
	if c.Scenario != "unit" || c.Peers != 10 || c.SampleMs != 5 {
		t.Fatalf("curve header %+v", c)
	}
	if len(c.Samples) < 6 {
		t.Fatalf("only %d samples", len(c.Samples))
	}
	if c.Summary.Baseline != 10 || c.Summary.Recovered != 10 {
		t.Fatalf("summary %+v, want baseline and recovered 10", c.Summary)
	}
	if c.Summary.FaultMin > 5 || c.Summary.FaultMin < 0 {
		t.Fatalf("fault min %d, want <= 5", c.Summary.FaultMin)
	}
	if c.Summary.MinLive != 6 {
		t.Fatalf("min live %d, want 6", c.Summary.MinLive)
	}

	dir := t.TempDir()
	path, err := c.WriteFile(dir)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if filepath.Base(path) != "CURVE_unit.json" {
		t.Fatalf("curve written to %s", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("stat curve: %v", err)
	}

	// No-fault runs summarize everything as baseline.
	c2 := rec.Curve(time.Time{}, time.Time{})
	if c2.FaultStartMs != -1 || c2.FaultEndMs != -1 {
		t.Fatalf("no-fault curve has span %d..%d", c2.FaultStartMs, c2.FaultEndMs)
	}
	if c2.Summary.Baseline != 10 || c2.Summary.Recovered != 0 {
		t.Fatalf("no-fault summary %+v", c2.Summary)
	}
}
