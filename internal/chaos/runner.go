package chaos

import (
	"sync"
	"sync/atomic"
	"time"
)

// Injector is the minimal surface a runtime must expose for fault
// injection: federation size plus the fail-stop gate. netrt.Runtime and
// the fabric transports satisfy it directly.
type Injector interface {
	NumPeers() int
	SetDown(peer int, down bool)
}

// Optional injector capabilities, discovered by interface assertion so
// the chaos package stays dependency-free. A schedule that uses a
// capability the injector lacks still replays its gate actions; the
// unsupported actions are skipped (loss on a transport with no loss
// model, say).
type (
	lossSetter     interface{ SetLoss(p float64) }
	peerLossSetter interface{ SetPeerLoss(peer int, p float64) }
	socketGrouper  interface{ AddressGroups() [][]int }
	// localizer restricts which peers this process may gate. In a
	// multi-process federation every process expands the identical action
	// list but applies only the peers it hosts — fail-stop gates live at
	// the owning runtime. netrt.Runtime's Local (the runtime.Locality
	// interface) matches.
	localizer interface{ Local(peer int) bool }
)

// Runner replays an expanded action list against an injector on the wall
// clock, starting from the moment Start was called.
type Runner struct {
	inj     Injector
	acts    []Action
	started time.Time

	live    atomic.Int64
	applied atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Start expands the schedule against the injector and begins replaying it
// immediately. Socket-outage events require the injector to expose
// AddressGroups.
func Start(inj Injector, s *Schedule) (*Runner, error) {
	var groups [][]int
	if sg, ok := inj.(socketGrouper); ok {
		groups = sg.AddressGroups()
	}
	acts, err := s.Expand(inj.NumPeers(), groups)
	if err != nil {
		return nil, err
	}
	return StartActions(inj, acts), nil
}

// StartActions begins replaying an already-expanded action list.
func StartActions(inj Injector, acts []Action) *Runner {
	r := &Runner{
		inj:     inj,
		acts:    acts,
		started: time.Now(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	r.live.Store(int64(inj.NumPeers()))
	go r.loop()
	return r
}

func (r *Runner) loop() {
	defer close(r.done)
	loc, hasLoc := r.inj.(localizer)
	ls, hasLoss := r.inj.(lossSetter)
	pls, hasPeerLoss := r.inj.(peerLossSetter)
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for _, a := range r.acts {
		wait := time.Until(r.started.Add(a.At))
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-r.stop:
				return
			}
		} else {
			select {
			case <-r.stop:
				return
			default:
			}
		}
		switch a.Kind {
		case ActKill, ActRecover:
			if !hasLoc || loc.Local(a.Peer) {
				r.inj.SetDown(a.Peer, a.Kind == ActKill)
			}
		case ActLoss:
			if hasLoss {
				ls.SetLoss(a.Loss)
			}
		case ActPeerLoss:
			if hasPeerLoss && (!hasLoc || loc.Local(a.Peer)) {
				pls.SetPeerLoss(a.Peer, a.Loss)
			}
		}
		// Live is schedule truth, not a local Down count: a process
		// cannot see peers gated down inside another process, but every
		// process replays the same expansion, so the stamped counts
		// agree everywhere.
		r.live.Store(int64(a.Live))
		r.applied.Add(1)
	}
}

// Live returns the schedule-truth live-node count as of the last applied
// action (the full federation before the first action fires).
func (r *Runner) Live() int { return int(r.live.Load()) }

// Applied returns how many actions have fired so far.
func (r *Runner) Applied() int { return int(r.applied.Load()) }

// Actions returns the expanded list the runner is replaying.
func (r *Runner) Actions() []Action { return r.acts }

// StartedAt returns the instant action time zero is measured from.
func (r *Runner) StartedAt() time.Time { return r.started }

// FaultSpan converts the expansion's fault span into absolute wall times.
func (r *Runner) FaultSpan() (start, end time.Time, ok bool) {
	s, e, ok := FaultSpan(r.acts)
	if !ok {
		return time.Time{}, time.Time{}, false
	}
	return r.started.Add(s), r.started.Add(e), true
}

// Done is closed once every action has fired (or the runner was stopped).
func (r *Runner) Done() <-chan struct{} { return r.done }

// Wait blocks until the schedule has fully replayed.
func (r *Runner) Wait() { <-r.done }

// Stop abandons any remaining actions. It does not undo applied faults.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}
