package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Probe supplies the two signals a curve plots, as plain callbacks so the
// recorder depends on neither the federation nor the runtime packages.
// Live is the live-node count to judge completeness against (typically
// Runner.Live — schedule truth); Completeness returns the newest closed
// window and the number of peers whose readings reached the root for it.
type Probe struct {
	Live         func() int
	Completeness func() (window int64, count int)
}

// Sample is one recorder tick.
type Sample struct {
	TMs          int64 `json:"t_ms"`
	Live         int   `json:"live"`
	Window       int64 `json:"window"`
	Completeness int   `json:"completeness"`
}

// Summary condenses a curve into the numbers CI gates on.
type Summary struct {
	// Baseline is the best completeness observed before the first fault
	// (over the whole run when nothing was killed).
	Baseline int `json:"baseline"`
	// FaultMin is the worst completeness while faults were held, raw —
	// it includes the transition dip right after a kill.
	FaultMin int `json:"fault_min"`
	// MinLive is the smallest live-node count the schedule reached.
	MinLive int `json:"min_live"`
	// Recovered is the best completeness after the last gate change.
	Recovered int `json:"recovered"`
}

// Curve is the CURVE_<scenario>.json artifact: a completeness-over-time
// series in the same per-commit artifact pipeline as the BENCH_*.json
// files. Plotting completeness and live against t_ms reproduces the
// shape of the paper's Figs 9-13 for the scripted scenario.
type Curve struct {
	Scenario     string   `json:"scenario"`
	Peers        int      `json:"peers"`
	SampleMs     int64    `json:"sample_ms"`
	FaultStartMs int64    `json:"fault_start_ms"` // -1 when nothing was killed
	FaultEndMs   int64    `json:"fault_end_ms"`
	Samples      []Sample `json:"samples"`
	Summary      Summary  `json:"summary"`
}

// Recorder samples a Probe at a fixed period, timestamping relative to
// its own Start.
type Recorder struct {
	scenario string
	peers    int
	every    time.Duration
	probe    Probe

	mu      sync.Mutex
	started time.Time
	samples []Sample

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewRecorder builds a recorder for an n-peer federation; every <= 0
// falls back to DefaultSampleMs.
func NewRecorder(scenario string, peers int, every time.Duration, probe Probe) *Recorder {
	if every <= 0 {
		every = DefaultSampleMs * time.Millisecond
	}
	return &Recorder{
		scenario: scenario,
		peers:    peers,
		every:    every,
		probe:    probe,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start begins sampling. Sample time zero is this call.
func (rec *Recorder) Start() {
	rec.mu.Lock()
	rec.started = time.Now()
	rec.mu.Unlock()
	go rec.loop()
}

func (rec *Recorder) loop() {
	defer close(rec.done)
	tick := time.NewTicker(rec.every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			rec.sample()
		case <-rec.stop:
			rec.sample() // final point so short runs still have data
			return
		}
	}
}

func (rec *Recorder) sample() {
	live := rec.probe.Live()
	win, count := rec.probe.Completeness()
	rec.mu.Lock()
	rec.samples = append(rec.samples, Sample{
		TMs:          time.Since(rec.started).Milliseconds(),
		Live:         live,
		Window:       win,
		Completeness: count,
	})
	rec.mu.Unlock()
}

// Stop ends sampling (idempotent) and waits for the final sample.
func (rec *Recorder) Stop() {
	rec.stopOnce.Do(func() { close(rec.stop) })
	<-rec.done
}

// Samples returns a snapshot of everything recorded so far.
func (rec *Recorder) Samples() []Sample {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]Sample, len(rec.samples))
	copy(out, rec.samples)
	return out
}

// Curve assembles the artifact. faultStart/faultEnd are the absolute wall
// times of the schedule's fault span (Runner.FaultSpan); pass zero times
// for a run that killed nothing.
func (rec *Recorder) Curve(faultStart, faultEnd time.Time) Curve {
	rec.mu.Lock()
	started := rec.started
	samples := make([]Sample, len(rec.samples))
	copy(samples, rec.samples)
	rec.mu.Unlock()

	c := Curve{
		Scenario:     rec.scenario,
		Peers:        rec.peers,
		SampleMs:     rec.every.Milliseconds(),
		FaultStartMs: -1,
		FaultEndMs:   -1,
		Samples:      samples,
	}
	faulted := !faultStart.IsZero()
	if faulted {
		c.FaultStartMs = faultStart.Sub(started).Milliseconds()
		c.FaultEndMs = faultEnd.Sub(started).Milliseconds()
	}
	sum := Summary{MinLive: rec.peers, FaultMin: -1}
	for _, s := range samples {
		if s.Live < sum.MinLive {
			sum.MinLive = s.Live
		}
		switch {
		case !faulted || s.TMs < c.FaultStartMs:
			if s.Completeness > sum.Baseline {
				sum.Baseline = s.Completeness
			}
		case s.TMs <= c.FaultEndMs:
			if sum.FaultMin == -1 || s.Completeness < sum.FaultMin {
				sum.FaultMin = s.Completeness
			}
		default:
			if s.Completeness > sum.Recovered {
				sum.Recovered = s.Completeness
			}
		}
	}
	c.Summary = sum
	return c
}

// WriteFile serializes the curve to dir/CURVE_<scenario>.json and returns
// the path.
func (c Curve) WriteFile(dir string) (string, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return "", fmt.Errorf("chaos: marshal curve: %w", err)
	}
	path := filepath.Join(dir, "CURVE_"+c.Scenario+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("chaos: %w", err)
	}
	return path, nil
}
