// Package chaos is the failure-injection and measurement harness: it runs
// scripted fault schedules against a live federation and records
// completeness-over-time curves, turning the paper's
// completeness-under-failure experiments (Figs 9-13) from simulator-only
// figures into a measured property of the socket runtime. A Schedule —
// parsed from a small JSON DSL — composes fail-stop kills, timed
// recoveries, rolling churn, correlated per-socket outages, and
// datagram-loss ramps; Expand flattens it into a deterministic,
// seed-replayable action list; a Runner applies the actions to a runtime
// on the wall clock; and a Recorder samples per-window completeness
// against the schedule's live-node count, emitting a CURVE_<scenario>.json
// time series alongside the bench artifacts.
//
// Determinism is the load-bearing property: expansion draws every random
// peer set from the schedule's own seeded source, so the same schedule
// expands to the identical action list in every process of a multi-process
// federation. Each process applies only the actions touching peers it
// hosts (fail-stop gates live at the owning runtime, as in a real
// deployment), yet all processes agree on the global fault pattern and on
// the live-node count the curves are judged against.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"regexp"
	"sort"
	"time"
)

// Event kinds understood by the schedule DSL.
const (
	// KindKill fail-stops a set of peers at at_ms: either an explicit
	// "peers" list or a random "frac" of the federation (drawn from
	// currently-live non-root peers). "stagger_ms" spaces the individual
	// kills out instead of dropping them all at one instant.
	KindKill = "kill"
	// KindRecover restarts peers at at_ms: an explicit "peers" list or
	// "all" for everything currently down. "stagger_ms" staggers the
	// restarts.
	KindRecover = "recover"
	// KindChurn rolls failures through [at_ms, until_ms): every
	// "every_ms" it kills "count" random live non-root peers and restarts
	// "count" random down peers, modeling steady membership churn.
	KindChurn = "churn"
	// KindSocketOutage fail-stops every peer multiplexed behind shared
	// socket (address group) "socket" for [at_ms, until_ms) — the
	// correlated failure a dead host or dropped link causes when many
	// peers share one socket.
	KindSocketOutage = "socket-outage"
	// KindLossRamp sweeps the global datagram-loss probability linearly
	// "from" -> "to" across [at_ms, until_ms] in "step_ms" increments,
	// leaving it at "to".
	KindLossRamp = "loss-ramp"
	// KindPeerLoss sets a per-peer datagram-loss override "loss" on the
	// listed "peers" at at_ms (0 removes it).
	KindPeerLoss = "peer-loss"
)

// Event is one entry of a schedule, in the JSON form the DSL uses. Which
// fields are meaningful depends on Kind; Validate rejects contradictory
// combinations.
type Event struct {
	Kind      string  `json:"kind"`
	AtMs      int64   `json:"at_ms"`
	UntilMs   int64   `json:"until_ms,omitempty"`
	Peers     []int   `json:"peers,omitempty"`
	Frac      float64 `json:"frac,omitempty"`
	All       bool    `json:"all,omitempty"`
	StaggerMs int64   `json:"stagger_ms,omitempty"`
	EveryMs   int64   `json:"every_ms,omitempty"`
	Count     int     `json:"count,omitempty"`
	Socket    int     `json:"socket,omitempty"`
	From      float64 `json:"from,omitempty"`
	To        float64 `json:"to,omitempty"`
	StepMs    int64   `json:"step_ms,omitempty"`
	Loss      float64 `json:"loss,omitempty"`
}

// interval reports whether the event kind occupies a time interval (and
// therefore requires until_ms > at_ms).
func (e Event) interval() bool {
	switch e.Kind {
	case KindChurn, KindSocketOutage, KindLossRamp:
		return true
	}
	return false
}

// Schedule is a parsed fault schedule: a scenario name (it becomes the
// CURVE_<scenario>.json filename), the seed every random draw derives
// from, the recorder's sampling period, and the event list. Times are
// milliseconds relative to the moment the Runner starts.
type Schedule struct {
	Scenario string  `json:"scenario"`
	Seed     int64   `json:"seed"`
	SampleMs int64   `json:"sample_ms,omitempty"`
	Events   []Event `json:"events"`
}

// DefaultSampleMs is the recorder period when the schedule leaves
// sample_ms unset.
const DefaultSampleMs = 500

// maxActions bounds one schedule's expansion; a churn interval misstated
// in microseconds would otherwise expand into millions of actions.
const maxActions = 1 << 20

var scenarioRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_-]*$`)

// Parse decodes and validates a schedule. Unknown fields are rejected —
// in a fault DSL a typoed knob silently defaulting to zero would run a
// different experiment than the one written.
func Parse(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("chaos: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a schedule file.
func Load(path string) (*Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return Parse(b)
}

// Validate checks the schedule's internal consistency: well-formed
// scenario name, non-negative times, positive intervals, exactly one
// target form per event, probabilities inside [0, 1], and no two interval
// events of the same kind (same socket, for outages) overlapping — an
// overlap would make the later event's effect order-dependent.
func (s *Schedule) Validate() error {
	if !scenarioRe.MatchString(s.Scenario) {
		return fmt.Errorf("chaos: scenario %q must be a [A-Za-z0-9_-]+ name (it names the curve file)", s.Scenario)
	}
	if s.SampleMs < 0 {
		return fmt.Errorf("chaos: sample_ms %d is negative", s.SampleMs)
	}
	for i, e := range s.Events {
		at := fmt.Sprintf("chaos: event %d (%s)", i, e.Kind)
		if e.AtMs < 0 {
			return fmt.Errorf("%s: at_ms %d is negative", at, e.AtMs)
		}
		if e.interval() {
			if e.UntilMs <= e.AtMs {
				return fmt.Errorf("%s: interval [%d, %d) is empty or negative", at, e.AtMs, e.UntilMs)
			}
		} else if e.UntilMs != 0 {
			return fmt.Errorf("%s: until_ms only applies to interval events (churn, socket-outage, loss-ramp)", at)
		}
		if e.StaggerMs < 0 {
			return fmt.Errorf("%s: stagger_ms %d is negative", at, e.StaggerMs)
		}
		for _, p := range e.Peers {
			if p < 0 {
				return fmt.Errorf("%s: negative peer index %d", at, p)
			}
		}
		switch e.Kind {
		case KindKill:
			if (len(e.Peers) > 0) == (e.Frac > 0) {
				return fmt.Errorf("%s: exactly one of peers / frac must be set", at)
			}
			if e.Frac < 0 || e.Frac > 1 {
				return fmt.Errorf("%s: frac %g outside [0, 1]", at, e.Frac)
			}
		case KindRecover:
			if (len(e.Peers) > 0) == e.All {
				return fmt.Errorf("%s: exactly one of peers / all must be set", at)
			}
		case KindChurn:
			if e.EveryMs <= 0 {
				return fmt.Errorf("%s: every_ms must be positive", at)
			}
			if e.Count <= 0 {
				return fmt.Errorf("%s: count must be positive", at)
			}
		case KindSocketOutage:
			if e.Socket < 0 {
				return fmt.Errorf("%s: socket %d is negative", at, e.Socket)
			}
		case KindLossRamp:
			if e.From < 0 || e.From > 1 || e.To < 0 || e.To > 1 {
				return fmt.Errorf("%s: loss bounds [%g, %g] outside [0, 1]", at, e.From, e.To)
			}
			if e.StepMs <= 0 {
				return fmt.Errorf("%s: step_ms must be positive", at)
			}
		case KindPeerLoss:
			if len(e.Peers) == 0 {
				return fmt.Errorf("%s: peers must be set", at)
			}
			if e.Loss < 0 || e.Loss > 1 {
				return fmt.Errorf("%s: loss %g outside [0, 1]", at, e.Loss)
			}
		default:
			return fmt.Errorf("%s: unknown kind", at)
		}
	}
	// Same-kind interval overlap: sort by start per overlap key and check
	// neighbors.
	type span struct {
		key      string
		from, to int64
		idx      int
	}
	var spans []span
	for i, e := range s.Events {
		if !e.interval() {
			continue
		}
		key := e.Kind
		if e.Kind == KindSocketOutage {
			key = fmt.Sprintf("%s/%d", e.Kind, e.Socket)
		}
		spans = append(spans, span{key, e.AtMs, e.UntilMs, i})
	}
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].key != spans[b].key {
			return spans[a].key < spans[b].key
		}
		return spans[a].from < spans[b].from
	})
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.key == b.key && b.from < a.to {
			return fmt.Errorf("chaos: events %d and %d: overlapping %s intervals [%d, %d) and [%d, %d)",
				a.idx, b.idx, a.key, a.from, a.to, b.from, b.to)
		}
	}
	return nil
}

// SamplePeriod returns the recorder period the schedule asks for.
func (s *Schedule) SamplePeriod() time.Duration {
	if s.SampleMs <= 0 {
		return DefaultSampleMs * time.Millisecond
	}
	return time.Duration(s.SampleMs) * time.Millisecond
}

// ActionKind tags one primitive action of an expanded schedule.
type ActionKind int

const (
	// ActKill gates one peer down (fail-stop at its owning runtime).
	ActKill ActionKind = iota
	// ActRecover lifts one peer's gate.
	ActRecover
	// ActLoss sets the global datagram-loss probability.
	ActLoss
	// ActPeerLoss sets one peer's datagram-loss override.
	ActPeerLoss
)

func (k ActionKind) String() string {
	switch k {
	case ActKill:
		return "kill"
	case ActRecover:
		return "recover"
	case ActLoss:
		return "loss"
	case ActPeerLoss:
		return "peer-loss"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Action is one primitive, timed fault operation. Peer is -1 for ActLoss.
// Live is the federation's live-node count once this action has applied —
// the schedule's own ground truth, identical in every process, which is
// what the recorder plots completeness against (a process's local Down
// view cannot see peers failed in another process).
type Action struct {
	At   time.Duration
	Kind ActionKind
	Peer int
	Loss float64
	Live int
}

// occurrence is one timed draw a schedule event generates: churn beats,
// ramp steps, an outage's start and end, or a plain event's single moment.
type occurrence struct {
	at    int64 // ms
	event int   // index into s.Events
	beat  int   // occurrence ordinal within the event
	end   bool  // socket-outage recovery edge
}

// Expand flattens the schedule into a time-sorted primitive action list
// for an n-peer federation. groups is the shared-socket address grouping
// (AddressGroups) — required only when the schedule uses socket-outage
// events. Random draws (kill fractions, churn victims, recovery order)
// come from a source seeded with s.Seed and are consumed in global time
// order, so Expand is a pure function of (schedule, n, groups): every
// process replays the identical fault pattern, and re-running a scenario
// reproduces its curve.
//
// Peer 0 is never killed: it hosts the query roots and the recorder — the
// paper's measurement workstation, which its failure experiments likewise
// keep alive.
func (s *Schedule) Expand(n int, groups [][]int) ([]Action, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("chaos: expand over %d peers", n)
	}
	for _, e := range s.Events {
		for _, p := range e.Peers {
			if p >= n {
				return nil, fmt.Errorf("chaos: event targets peer %d outside federation of %d", p, n)
			}
		}
		if e.Kind == KindSocketOutage && e.Socket >= len(groups) {
			return nil, fmt.Errorf("chaos: socket-outage targets group %d but the runtime has %d address groups", e.Socket, len(groups))
		}
	}

	// Generate every occurrence, then order them globally in time (stable
	// on event order) so state-dependent draws see a consistent model.
	var occs []occurrence
	for i, e := range s.Events {
		switch e.Kind {
		case KindChurn:
			beat := 0
			for t := e.AtMs; t < e.UntilMs; t += e.EveryMs {
				occs = append(occs, occurrence{at: t, event: i, beat: beat})
				beat++
			}
		case KindLossRamp:
			beat := 0
			for t := e.AtMs; t < e.UntilMs; t += e.StepMs {
				occs = append(occs, occurrence{at: t, event: i, beat: beat})
				beat++
			}
			occs = append(occs, occurrence{at: e.UntilMs, event: i, beat: beat})
		case KindSocketOutage:
			occs = append(occs, occurrence{at: e.AtMs, event: i})
			occs = append(occs, occurrence{at: e.UntilMs, event: i, end: true})
		default:
			occs = append(occs, occurrence{at: e.AtMs, event: i})
		}
		if len(occs) > maxActions {
			return nil, fmt.Errorf("chaos: schedule expands past %d actions", maxActions)
		}
	}
	sort.SliceStable(occs, func(a, b int) bool { return occs[a].at < occs[b].at })

	rng := rand.New(rand.NewSource(s.Seed))
	down := make([]bool, n)
	outage := make([][]int, len(s.Events)) // peers each socket-outage downed
	var acts []Action

	// upPeers lists live non-root peers in ascending order — the stable
	// candidate set random draws shuffle.
	upPeers := func() []int {
		var up []int
		for p := 1; p < n; p++ {
			if !down[p] {
				up = append(up, p)
			}
		}
		return up
	}
	downPeers := func() []int {
		var d []int
		for p := 1; p < n; p++ {
			if down[p] {
				d = append(d, p)
			}
		}
		return d
	}
	// emit appends per-peer kill/recover actions spaced stagger apart from
	// base, updating the model immediately (draws at later occurrences see
	// the whole set applied).
	emit := func(kind ActionKind, peers []int, baseMs, staggerMs int64) {
		for i, p := range peers {
			if down[p] == (kind == ActKill) {
				continue // already in the target state
			}
			down[p] = kind == ActKill
			acts = append(acts, Action{
				At:   time.Duration(baseMs+int64(i)*staggerMs) * time.Millisecond,
				Kind: kind,
				Peer: p,
			})
		}
	}

	for _, oc := range occs {
		e := s.Events[oc.event]
		switch e.Kind {
		case KindKill:
			var victims []int
			if len(e.Peers) > 0 {
				victims = e.Peers
			} else {
				up := upPeers()
				want := int(e.Frac*float64(n) + 0.5)
				if want > len(up) {
					want = len(up)
				}
				rng.Shuffle(len(up), func(a, b int) { up[a], up[b] = up[b], up[a] })
				victims = up[:want]
			}
			emit(ActKill, victims, oc.at, e.StaggerMs)
		case KindRecover:
			var back []int
			if len(e.Peers) > 0 {
				back = e.Peers
			} else {
				back = downPeers()
				rng.Shuffle(len(back), func(a, b int) { back[a], back[b] = back[b], back[a] })
			}
			emit(ActRecover, back, oc.at, e.StaggerMs)
		case KindChurn:
			up := upPeers()
			want := e.Count
			if want > len(up) {
				want = len(up)
			}
			rng.Shuffle(len(up), func(a, b int) { up[a], up[b] = up[b], up[a] })
			dn := downPeers()
			rng.Shuffle(len(dn), func(a, b int) { dn[a], dn[b] = dn[b], dn[a] })
			if len(dn) > e.Count {
				dn = dn[:e.Count]
			}
			emit(ActKill, up[:want], oc.at, 0)
			emit(ActRecover, dn, oc.at, 0)
		case KindSocketOutage:
			if !oc.end {
				var victims []int
				for _, p := range groups[e.Socket] {
					if p != 0 && !down[p] {
						victims = append(victims, p)
					}
				}
				outage[oc.event] = victims
				emit(ActKill, victims, oc.at, 0)
			} else {
				emit(ActRecover, outage[oc.event], oc.at, 0)
			}
		case KindLossRamp:
			frac := float64(oc.at-e.AtMs) / float64(e.UntilMs-e.AtMs)
			acts = append(acts, Action{
				At:   time.Duration(oc.at) * time.Millisecond,
				Kind: ActLoss,
				Peer: -1,
				Loss: e.From + (e.To-e.From)*frac,
			})
		case KindPeerLoss:
			for _, p := range e.Peers {
				acts = append(acts, Action{
					At:   time.Duration(oc.at) * time.Millisecond,
					Kind: ActPeerLoss,
					Peer: p,
					Loss: e.Loss,
				})
			}
		}
		if len(acts) > maxActions {
			return nil, fmt.Errorf("chaos: schedule expands past %d actions", maxActions)
		}
	}

	// Staggered applications can out-run later occurrences; the final
	// order is by wall time, stable on generation order. Then replay the
	// gate actions once more to stamp each action with the live count the
	// federation has after it applies.
	sort.SliceStable(acts, func(a, b int) bool { return acts[a].At < acts[b].At })
	live := n
	for i := range acts {
		switch acts[i].Kind {
		case ActKill:
			live--
		case ActRecover:
			live++
		}
		acts[i].Live = live
	}
	return acts, nil
}

// FaultSpan returns the time range [start, end] over which the expanded
// schedule holds peers down: start is the first kill, end the last gate
// change (the final recovery, or the last kill of a schedule that never
// recovers). ok is false for schedules that kill nothing (pure loss
// scenarios).
func FaultSpan(acts []Action) (start, end time.Duration, ok bool) {
	for _, a := range acts {
		if a.Kind != ActKill && a.Kind != ActRecover {
			continue
		}
		if !ok {
			start = a.At
			ok = true
		}
		end = a.At
	}
	return start, end, ok
}
