// Package gateway is the serving plane: an HTTP/JSON front door hosted by
// the coordinator process that turns a running federation into a
// multi-tenant continuous-query service. Clients install queries from a
// JSON spec, list them with per-query epoch/completeness/traffic status,
// stream per-window results as NDJSON or SSE, and remove them — the
// consumption model of the paper's LoGS case study, where many independent
// long-lived queries feed dashboards rather than processes linked into the
// coordinator.
//
// The gateway deliberately sits outside the data path: one fabric
// subscription fans results into per-query bounded caches and per-client
// stream channels, so a reconnecting reader catches up from the cache with
// zero federation traffic, and a slow reader loses its own tail (drop on
// full channel) instead of back-pressuring the root peer. Admission
// control — a query-count ceiling, per-client install rate limits, and an
// in-flight install cap — protects the shared mesh from tenant misuse.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/tuple"
)

// Options tunes the serving plane. Zero values pick the defaults.
type Options struct {
	// MaxQueries caps installed queries; installs past it get 429.
	// Default 256.
	MaxQueries int
	// CacheWindows bounds the per-query result cache (last N windows)
	// serving read-only clients and reconnect catch-up. Default 64.
	CacheWindows int
	// InstallRate is the sustained per-client install rate in
	// installs/second; InstallBurst is the bucket depth. Zero rate
	// disables per-client limiting.
	InstallRate  float64
	InstallBurst int
	// MaxPendingInstalls bounds concurrently in-flight install/remove
	// multicasts (backpressure toward the mesh). Default 8.
	MaxPendingInstalls int
	// MaxStreams bounds concurrently open result streams. Default 256.
	MaxStreams int
	// StreamBuffer is each stream subscriber's channel depth; a reader
	// slower than the root's report rate loses its tail. Default 64.
	StreamBuffer int
}

func (o Options) withDefaults() Options {
	if o.MaxQueries <= 0 {
		o.MaxQueries = 256
	}
	if o.CacheWindows <= 0 {
		o.CacheWindows = 64
	}
	if o.InstallBurst <= 0 {
		o.InstallBurst = 4
	}
	if o.MaxPendingInstalls <= 0 {
		o.MaxPendingInstalls = 8
	}
	if o.MaxStreams <= 0 {
		o.MaxStreams = 256
	}
	if o.StreamBuffer <= 0 {
		o.StreamBuffer = 64
	}
	return o
}

// Spec is the JSON install body: the wire form of federation.QuerySpec.
// Exactly one of window_ms (time window) or window_tuples (count window)
// must be set; slide defaults to the range (non-overlapping windows).
type Spec struct {
	Name         string   `json:"name"`
	Op           string   `json:"op"`
	Args         []string `json:"args,omitempty"`
	Source       string   `json:"source,omitempty"`
	FilterKey    string   `json:"filter_key,omitempty"`
	WindowMS     int64    `json:"window_ms,omitempty"`
	SlideMS      int64    `json:"slide_ms,omitempty"`
	WindowTuples int      `json:"window_tuples,omitempty"`
	SlideTuples  int      `json:"slide_tuples,omitempty"`
	Trees        int      `json:"trees,omitempty"`
	BF           int      `json:"bf,omitempty"`
}

// toQuerySpec validates the JSON-level shape and converts to the
// federation's spec; semantic validation (operator registry, window
// bounds) happens inside InstallQuery.
func (sp Spec) toQuerySpec() (federation.QuerySpec, error) {
	var w tuple.WindowSpec
	switch {
	case sp.WindowMS > 0 && sp.WindowTuples > 0:
		return federation.QuerySpec{}, errors.New("spec: window_ms and window_tuples are mutually exclusive")
	case sp.WindowMS > 0:
		w.Kind = tuple.TimeWindow
		w.Range = time.Duration(sp.WindowMS) * time.Millisecond
		w.Slide = w.Range
		if sp.SlideMS > 0 {
			w.Slide = time.Duration(sp.SlideMS) * time.Millisecond
		}
	case sp.WindowTuples > 0:
		w.Kind = tuple.TupleWindow
		w.RangeN = sp.WindowTuples
		w.SlideN = sp.WindowTuples
		if sp.SlideTuples > 0 {
			w.SlideN = sp.SlideTuples
		}
	default:
		return federation.QuerySpec{}, errors.New("spec: one of window_ms or window_tuples is required")
	}
	return federation.QuerySpec{
		Name:      sp.Name,
		Op:        sp.Op,
		Args:      sp.Args,
		Source:    sp.Source,
		FilterKey: sp.FilterKey,
		Window:    w,
		Trees:     sp.Trees,
		BF:        sp.BF,
	}, nil
}

// WindowResult is one streamed/cached per-window record.
type WindowResult struct {
	Query        string      `json:"query"`
	Epoch        uint32      `json:"epoch"`
	Window       int64       `json:"window"`
	Value        tuple.Value `json:"value"`
	Completeness int         `json:"completeness"`
	Hops         int         `json:"hops"`
	AtMS         int64       `json:"at_ms"`
}

// QueryInfo is one list-endpoint entry: the federation's installation
// status joined with the gateway's observed result stream.
type QueryInfo struct {
	Name       string `json:"name"`
	Epoch      uint32 `json:"epoch"`
	Members    int    `json:"members"`
	Installed  int    `json:"installed"`
	Wired      int    `json:"wired"`
	LastWindow int64  `json:"last_window"`
	// Completeness is the best per-window participant count seen at this
	// gateway (max across epochs, per the migration contract).
	Completeness int    `json:"completeness"`
	CtlBytes     uint64 `json:"ctl_bytes"`
	DataBytes    uint64 `json:"data_bytes"`
}

// queryState is the gateway's per-query fan-out: a bounded window cache
// plus the live stream subscribers.
type queryState struct {
	mu      sync.Mutex
	cache   []WindowResult // ascending window order, last CacheWindows entries
	subs    map[uint64]chan WindowResult
	subSeq  uint64
	lastWin int64
	best    int // max completeness observed across windows and epochs
	closed  bool
}

// Server is the HTTP serving plane over one federation.
type Server struct {
	fed *federation.Federation
	opt Options
	mux *http.ServeMux

	unsub func()
	done  chan struct{}
	once  sync.Once

	mu         sync.Mutex
	queries    map[string]*queryState
	removed    map[string]bool
	buckets    map[string]*bucket
	installing int
	streams    int
}

// bucket is a per-client token bucket for install admission.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewServer builds the serving plane over a running federation. The single
// fabric subscription it takes is released by Close.
func NewServer(fed *federation.Federation, opt Options) *Server {
	s := &Server{
		fed:     fed,
		opt:     opt.withDefaults(),
		mux:     http.NewServeMux(),
		done:    make(chan struct{}),
		queries: map[string]*queryState{},
		removed: map[string]bool{},
		buckets: map[string]*bucket{},
	}
	s.mux.HandleFunc("POST /v1/queries", s.handleInstall)
	s.mux.HandleFunc("GET /v1/queries", s.handleList)
	s.mux.HandleFunc("GET /v1/queries/{name}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/queries/{name}", s.handleRemove)
	s.mux.HandleFunc("GET /v1/queries/{name}/results", s.handleStream)
	s.mux.HandleFunc("GET /v1/queries/{name}/windows", s.handleWindows)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.unsub = fed.Fab.SubscribeAll(s.onResult)
	return s
}

// Close detaches the gateway from the fabric and terminates every open
// stream. Idempotent; requests arriving after Close get 503.
func (s *Server) Close() {
	s.once.Do(func() {
		s.unsub()
		close(s.done)
		s.mu.Lock()
		states := make([]*queryState, 0, len(s.queries))
		for _, q := range s.queries {
			states = append(states, q)
		}
		s.mu.Unlock()
		for _, q := range states {
			q.close()
		}
	})
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.done:
		http.Error(w, "gateway shut down", http.StatusServiceUnavailable)
		return
	default:
	}
	s.mux.ServeHTTP(w, r)
}

// onResult is the fabric fan-in: it runs on the root peer's report path,
// so it only moves the record into per-query state and never blocks (slow
// stream readers drop their own tail).
func (s *Server) onResult(r mortar.Result) {
	s.mu.Lock()
	if s.removed[r.Query] {
		s.mu.Unlock()
		return
	}
	q := s.queries[r.Query]
	if q == nil {
		q = &queryState{subs: map[uint64]chan WindowResult{}}
		s.queries[r.Query] = q
	}
	s.mu.Unlock()
	wr := WindowResult{
		Query:        r.Query,
		Epoch:        r.Epoch,
		Window:       r.WindowIndex,
		Value:        r.Value,
		Completeness: r.Count,
		Hops:         r.Hops,
		AtMS:         r.At.Milliseconds(),
	}
	q.ingest(wr, s.opt.CacheWindows)
}

// ingest merges one result into the cache (replacing a same-window entry
// only for a better completeness — during migrations both epochs report
// and the per-window max is the contract) and fans it to subscribers.
func (q *queryState) ingest(wr WindowResult, cap int) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	if n := len(q.cache); n > 0 && q.cache[n-1].Window == wr.Window {
		if wr.Completeness >= q.cache[n-1].Completeness {
			q.cache[n-1] = wr
		}
	} else {
		q.cache = append(q.cache, wr)
		if len(q.cache) > cap {
			q.cache = append(q.cache[:0], q.cache[len(q.cache)-cap:]...)
		}
	}
	if wr.Window > q.lastWin {
		q.lastWin = wr.Window
	}
	if wr.Completeness > q.best {
		q.best = wr.Completeness
	}
	subs := make([]chan WindowResult, 0, len(q.subs))
	for _, ch := range q.subs {
		subs = append(subs, ch)
	}
	q.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- wr:
		default: // reader slower than the root: it loses this record
		}
	}
}

// subscribe attaches a stream reader: a snapshot of the cache from window
// `from` plus a live channel. cancel detaches and closes the channel.
func (q *queryState) subscribe(from int64, depth int) (replay []WindowResult, ch chan WindowResult, cancel func()) {
	ch = make(chan WindowResult, depth)
	q.mu.Lock()
	for _, wr := range q.cache {
		if wr.Window >= from {
			replay = append(replay, wr)
		}
	}
	q.subSeq++
	id := q.subSeq
	if q.closed {
		close(ch)
	} else {
		q.subs[id] = ch
	}
	q.mu.Unlock()
	return replay, ch, func() {
		q.mu.Lock()
		if _, ok := q.subs[id]; ok {
			delete(q.subs, id)
			close(ch)
		}
		q.mu.Unlock()
	}
}

// close terminates every subscriber (query removed or gateway shut down).
func (q *queryState) close() {
	q.mu.Lock()
	for id, ch := range q.subs {
		delete(q.subs, id)
		close(ch)
	}
	q.closed = true
	q.mu.Unlock()
}

// snapshot returns the cached windows and observed stream stats.
func (q *queryState) snapshot() (cache []WindowResult, lastWin int64, best int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]WindowResult(nil), q.cache...), q.lastWin, q.best
}

// clientKey identifies a client for rate limiting: the remote IP.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admitInstall applies the three admission gates and, when admitted,
// reserves an in-flight install slot (released by releaseInstall).
func (s *Server) admitInstall(r *http.Request) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.installing >= s.opt.MaxPendingInstalls {
		return http.StatusTooManyRequests, errors.New("too many installs in flight")
	}
	// QueryCount, not Queries: the latter enters peer serialization
	// domains, which may be blocked on s.mu in the result fan-in.
	if s.fed.QueryCount() >= s.opt.MaxQueries {
		return http.StatusTooManyRequests, fmt.Errorf("query limit %d reached", s.opt.MaxQueries)
	}
	if s.opt.InstallRate > 0 {
		key := clientKey(r)
		b := s.buckets[key]
		now := time.Now()
		if b == nil {
			b = &bucket{tokens: float64(s.opt.InstallBurst), last: now}
			s.buckets[key] = b
		}
		b.tokens += now.Sub(b.last).Seconds() * s.opt.InstallRate
		b.last = now
		if max := float64(s.opt.InstallBurst); b.tokens > max {
			b.tokens = max
		}
		if b.tokens < 1 {
			return http.StatusTooManyRequests, fmt.Errorf("client %s over install rate", key)
		}
		b.tokens--
	}
	s.installing++
	return 0, nil
}

func (s *Server) releaseInstall() {
	s.mu.Lock()
	s.installing--
	s.mu.Unlock()
}

func (s *Server) handleInstall(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		http.Error(w, "bad install body: "+err.Error(), http.StatusBadRequest)
		return
	}
	qs, err := sp.toQuerySpec()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if code, err := s.admitInstall(r); err != nil {
		http.Error(w, err.Error(), code)
		return
	}
	defer s.releaseInstall()
	if err := s.fed.InstallQuery(qs); err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already installed") {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	s.mu.Lock()
	delete(s.removed, qs.Name)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]string{"name": qs.Name, "status": "installed"})
}

func (s *Server) info(st federation.QueryStatus) QueryInfo {
	qi := QueryInfo{
		Name:      st.Name,
		Epoch:     st.Epoch,
		Members:   st.Members,
		Installed: st.Installed,
		Wired:     st.Wired,
		CtlBytes:  st.CtlBytes,
		DataBytes: st.DataBytes,
	}
	s.mu.Lock()
	q := s.queries[st.Name]
	s.mu.Unlock()
	if q != nil {
		_, qi.LastWindow, qi.Completeness = q.snapshot()
	}
	return qi
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos := make([]QueryInfo, 0)
	for _, st := range s.fed.Queries() {
		infos = append(infos, s.info(st))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(infos)
}

// status looks one query up in the federation's listing.
func (s *Server) status(name string) (federation.QueryStatus, bool) {
	for _, st := range s.fed.Queries() {
		if st.Name == name {
			return st, true
		}
	}
	return federation.QueryStatus{}, false
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.status(r.PathValue("name"))
	if !ok {
		http.Error(w, "unknown query", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.info(st))
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.fed.RemoveQuery(name); err != nil {
		code := http.StatusNotFound
		if strings.Contains(err.Error(), "still feeds") {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	s.mu.Lock()
	q := s.queries[name]
	delete(s.queries, name)
	s.removed[name] = true
	s.mu.Unlock()
	if q != nil {
		q.close()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWindows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	q := s.queries[name]
	s.mu.Unlock()
	if q == nil {
		if _, ok := s.status(name); !ok {
			http.Error(w, "unknown query", http.StatusNotFound)
			return
		}
		q = &queryState{} // installed but nothing reported yet
	}
	cache, _, _ := q.snapshot()
	if cache == nil {
		cache = []WindowResult{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(cache)
}

// handleStream serves per-window results as NDJSON (default) or SSE
// (Accept: text/event-stream). ?from=W replays cached windows >= W before
// going live — reconnect catch-up straight from the cache, no federation
// traffic. ?limit=N closes the stream after N records.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.status(name); !ok {
		http.Error(w, "unknown query", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	if s.streams >= s.opt.MaxStreams {
		s.mu.Unlock()
		http.Error(w, "too many open streams", http.StatusTooManyRequests)
		return
	}
	s.streams++
	q := s.queries[name]
	if q == nil {
		q = &queryState{subs: map[uint64]chan WindowResult{}}
		s.queries[name] = q
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.streams--
		s.mu.Unlock()
	}()

	from := int64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
		from = n
	}
	limit := -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)

	replay, ch, cancel := q.subscribe(from, s.opt.StreamBuffer)
	defer cancel()

	enc := json.NewEncoder(w)
	sent := 0
	lastWin := from - 1
	emit := func(wr WindowResult) bool {
		if wr.Window <= lastWin {
			return true // already served by the cache replay or an older epoch
		}
		lastWin = wr.Window
		if sse {
			fmt.Fprintf(w, "data: ")
		}
		if err := enc.Encode(wr); err != nil {
			return false
		}
		if sse {
			fmt.Fprintf(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent++
		return limit < 0 || sent < limit
	}
	for _, wr := range replay {
		if !emit(wr) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.done:
			return
		case wr, ok := <-ch:
			if !ok {
				return // query removed
			}
			if !emit(wr) {
				return
			}
		}
	}
}

// classByteSource is implemented by runtimes that split transmitted wire
// bytes by class (runtime/netrt).
type classByteSource interface {
	ClassBytes() (controlBytes, dataBytes uint64)
}

// Stats is the /v1/stats payload: the fabric's byte accounting (per-class
// and per-query), the shared-mesh share, and — when the runtime reports it
// — actual wire bytes by class.
type Stats struct {
	Peers          int    `json:"peers"`
	Live           int    `json:"live"`
	Queries        int    `json:"queries"`
	CtlBytes       uint64 `json:"ctl_bytes"`
	DataBytes      uint64 `json:"data_bytes"`
	SharedCtlBytes uint64 `json:"shared_ctl_bytes"`
	WireCtlBytes   uint64 `json:"wire_ctl_bytes,omitempty"`
	WireDataBytes  uint64 `json:"wire_data_bytes,omitempty"`
	// Upstream summary coalescing (hold-and-merge + wire-v4 batches).
	// FramesSaved is the frames the feature avoided: summaries merged away
	// in staging buffers plus summaries that shared a batch frame.
	SummariesStaged    uint64      `json:"summaries_staged"`
	SummariesCoalesced uint64      `json:"summaries_coalesced"`
	DataFrames         uint64      `json:"data_frames"`
	BatchFrames        uint64      `json:"batch_frames"`
	BatchedSummaries   uint64      `json:"batched_summaries"`
	FramesSaved        uint64      `json:"frames_saved"`
	PerQuery           []QueryInfo `json:"per_query"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	fab := s.fed.Fab
	st := Stats{
		Peers:          fab.NumPeers(),
		Live:           fab.LiveCount(),
		CtlBytes:       fab.Stats.ControlBytes.Load(),
		DataBytes:      fab.Stats.DataBytes.Load(),
		SharedCtlBytes: fab.Stats.SharedCtlBytes.Load(),

		SummariesStaged:    fab.Stats.SummariesStaged.Load(),
		SummariesCoalesced: fab.Stats.SummariesCoalesced.Load(),
		DataFrames:         fab.Stats.DataFrames.Load(),
		BatchFrames:        fab.Stats.BatchFrames.Load(),
		BatchedSummaries:   fab.Stats.BatchedSummaries.Load(),

		PerQuery: []QueryInfo{},
	}
	st.FramesSaved = st.SummariesCoalesced + st.BatchedSummaries - st.BatchFrames
	if cb, ok := s.fed.Rt.(classByteSource); ok {
		st.WireCtlBytes, st.WireDataBytes = cb.ClassBytes()
	}
	for _, q := range s.fed.Queries() {
		st.PerQuery = append(st.PerQuery, s.info(q))
	}
	st.Queries = len(st.PerQuery)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
