package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/runtime/livert"
	"repro/internal/tuple"
)

// liveConfig shortens the mortar timers so a live federation converges in
// test time.
func liveConfig() mortar.Config {
	cfg := mortar.DefaultConfig()
	cfg.HeartbeatPeriod = 50 * time.Millisecond
	cfg.MinTimeout = 20 * time.Millisecond
	cfg.MaxTimeout = 2 * time.Second
	cfg.TimeoutSlack = 30 * time.Millisecond
	return cfg
}

// newTestPlane stands up a live federation with sensors running and a
// gateway over it, wrapped in an httptest server.
func newTestPlane(t *testing.T, peers int, opt Options) (*Server, *federation.Federation, *httptest.Server) {
	t.Helper()
	rt := livert.New(peers, livert.Options{Seed: 11, MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	fed, err := federation.NewRuntimeCfg(rt, nil, rand.New(rand.NewSource(11)), liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	fed.StartSensors(100*time.Millisecond, func(int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rand.New(rand.NewSource(13)))
	srv := NewServer(fed, opt)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		rt.Shutdown()
	})
	return srv, fed, ts
}

func install(t *testing.T, ts *httptest.Server, sp Spec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(sp)
	resp, err := http.Post(ts.URL+"/v1/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func countSpec(name string) Spec {
	return Spec{Name: name, Op: "count", WindowMS: 200, Trees: 2, BF: 4}
}

func TestSpecValidation(t *testing.T) {
	_, _, ts := newTestPlane(t, 4, Options{})
	cases := []struct {
		what string
		body string
	}{
		{"malformed json", `{"name": `},
		{"missing window", `{"name":"a","op":"count"}`},
		{"both window kinds", `{"name":"a","op":"count","window_ms":200,"window_tuples":5}`},
		{"empty name", `{"op":"count","window_ms":200}`},
		{"unknown operator", `{"name":"a","op":"nonesuch","window_ms":200}`},
		{"unknown source query", `{"name":"a","op":"count","window_ms":200,"source":"ghost"}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/queries", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", c.what, resp.StatusCode)
		}
	}
	// A valid spec installs, and reinstalling the same name conflicts.
	if resp := install(t, ts, countSpec("q")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("valid install: got %d, want 201", resp.StatusCode)
	}
	if resp := install(t, ts, countSpec("q")); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate install: got %d, want 409", resp.StatusCode)
	}
	// Nothing invalid leaked into the federation.
	var list []QueryInfo
	getJSON(t, ts, "/v1/queries", &list)
	if len(list) != 1 || list[0].Name != "q" {
		t.Fatalf("list after rejections: %+v", list)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionLimits(t *testing.T) {
	_, _, ts := newTestPlane(t, 4, Options{MaxQueries: 2})
	if resp := install(t, ts, countSpec("a")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install a: %d", resp.StatusCode)
	}
	if resp := install(t, ts, countSpec("b")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install b: %d", resp.StatusCode)
	}
	if resp := install(t, ts, countSpec("c")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("install past MaxQueries: got %d, want 429", resp.StatusCode)
	}
	// Removing one frees a slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/queries/a", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("remove a: got %d, want 204", resp.StatusCode)
	}
	if resp := install(t, ts, countSpec("c")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install after remove: got %d, want 201", resp.StatusCode)
	}
}

func TestInstallRateLimit(t *testing.T) {
	_, _, ts := newTestPlane(t, 4, Options{InstallRate: 0.001, InstallBurst: 1})
	if resp := install(t, ts, countSpec("a")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first install: %d", resp.StatusCode)
	}
	if resp := install(t, ts, countSpec("b")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second install within empty bucket: got %d, want 429", resp.StatusCode)
	}
}

// readWindows reads up to n NDJSON records from a results stream.
func readWindows(t *testing.T, url string, n int) []WindowResult {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var out []WindowResult
	sc := bufio.NewScanner(resp.Body)
	for len(out) < n && sc.Scan() {
		var wr WindowResult
		if err := json.Unmarshal(sc.Bytes(), &wr); err != nil {
			t.Fatalf("bad stream record %q: %v", sc.Text(), err)
		}
		out = append(out, wr)
	}
	return out
}

// A reader that drops off and comes back is served from the cache: the
// catch-up windows arrive immediately (no waiting for the next report) and
// the query's attributable federation traffic does not move.
func TestCacheCatchup(t *testing.T) {
	_, fed, ts := newTestPlane(t, 4, Options{})
	if resp := install(t, ts, countSpec("q")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d", resp.StatusCode)
	}
	// First client: watch three live windows, then disconnect.
	first := readWindows(t, ts.URL+"/v1/queries/q/results?limit=3", 3)
	if len(first) != 3 {
		t.Fatalf("first reader got %d windows", len(first))
	}
	lastSeen := first[len(first)-1].Window

	// Let more windows accumulate while nobody watches.
	time.Sleep(600 * time.Millisecond)

	ctlBefore, _ := fed.Fab.QueryTraffic("q")
	start := time.Now()
	catch := readWindows(t, fmt.Sprintf("%s/v1/queries/q/results?from=%d&limit=2", ts.URL, lastSeen+1), 2)
	elapsed := time.Since(start)
	ctlAfter, _ := fed.Fab.QueryTraffic("q")

	if len(catch) != 2 {
		t.Fatalf("catch-up got %d windows", len(catch))
	}
	for _, wr := range catch {
		if wr.Window <= lastSeen {
			t.Fatalf("catch-up replayed window %d already seen (from=%d)", wr.Window, lastSeen+1)
		}
	}
	// Cached windows must be there already: far faster than waiting out
	// two more 200ms windows.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("catch-up took %v; cache should answer without waiting for new windows", elapsed)
	}
	if ctlAfter != ctlBefore {
		t.Fatalf("cache catch-up moved query control traffic: %d -> %d", ctlBefore, ctlAfter)
	}
}

// Closing the gateway mid-stream ends the response body cleanly and flips
// subsequent requests to 503.
func TestCloseMidStream(t *testing.T) {
	srv, _, ts := newTestPlane(t, 4, Options{})
	if resp := install(t, ts, countSpec("q")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/queries/q/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read one record so the stream is demonstrably live.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("stream produced nothing")
	}
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stream ended with transport error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after Close")
	}
	after, err := http.Get(ts.URL + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	after.Body.Close()
	if after.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request after Close: got %d, want 503", after.StatusCode)
	}
	srv.Close() // idempotent
}

// SSE framing: Accept: text/event-stream wraps each record in a data:
// line followed by a blank line.
func TestSSEStream(t *testing.T) {
	_, _, ts := newTestPlane(t, 4, Options{})
	if resp := install(t, ts, countSpec("q")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/queries/q/results?limit=2", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	records := 0
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "data: ") {
			var wr WindowResult
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &wr); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			records++
		}
	}
	if records != 2 {
		t.Fatalf("got %d SSE records, want 2", records)
	}
}

// The stream endpoint 404s for unknown queries and a removed query's
// stream terminates.
func TestStreamLifecycle(t *testing.T) {
	_, _, ts := newTestPlane(t, 4, Options{})
	resp, err := http.Get(ts.URL + "/v1/queries/ghost/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown query stream: got %d, want 404", resp.StatusCode)
	}
	if resp := install(t, ts, countSpec("q")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d", resp.StatusCode)
	}
	stream, err := http.Get(ts.URL + "/v1/queries/q/results")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatal("stream produced nothing")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/queries/q", nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("remove: %d", del.StatusCode)
	}
	done := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after query removal")
	}
	var list []QueryInfo
	getJSON(t, ts, "/v1/queries", &list)
	if len(list) != 0 {
		t.Fatalf("list not empty after removal: %+v", list)
	}
}

// The stats payload surfaces the upstream coalescing counters: after a few
// windows of traffic the fabric must have staged summaries, and the
// frames-saved figure must hold its defining identity against the raw
// counters it derives from.
func TestStatsReportsCoalescing(t *testing.T) {
	_, _, ts := newTestPlane(t, 4, Options{})
	if resp := install(t, ts, countSpec("q")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d", resp.StatusCode)
	}
	if got := readWindows(t, ts.URL+"/v1/queries/q/results?limit=3", 3); len(got) != 3 {
		t.Fatalf("got %d windows before stats", len(got))
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SummariesStaged == 0 {
		t.Fatal("stats report zero staged summaries on a default (coalescing-on) plane")
	}
	if st.DataFrames == 0 {
		t.Fatal("stats report zero data frames after three result windows")
	}
	if want := st.SummariesCoalesced + st.BatchedSummaries - st.BatchFrames; st.FramesSaved != want {
		t.Fatalf("frames_saved = %d, want coalesced+batched-batch_frames = %d", st.FramesSaved, want)
	}
	if st.SummariesCoalesced+st.BatchedSummaries > st.SummariesStaged {
		t.Fatalf("flushed population exceeds staged: %+v", st)
	}
}
