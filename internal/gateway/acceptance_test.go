package gateway

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// The serving-plane acceptance scenario: 64 concurrent queries over one
// shared heartbeat mesh, every one of them streaming windowed results
// through the gateway at full completeness, and a reconnecting reader
// served from the cache with zero additional federation traffic for the
// query it reads.
func TestSixtyFourQueriesOneMesh(t *testing.T) {
	const peers = 10
	const queries = 64
	_, fed, ts := newTestPlane(t, peers, Options{
		MaxQueries:         queries * 2,
		MaxStreams:         queries * 2,
		MaxPendingInstalls: queries,
	})

	// Install 64 queries over HTTP, concurrently.
	var wg sync.WaitGroup
	codes := make(chan int, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := Spec{Name: fmt.Sprintf("q%02d", i), Op: "count", WindowMS: 400, Trees: 2, BF: 4}
			codes <- install(t, ts, sp).StatusCode
		}(i)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusCreated {
			t.Fatalf("install over HTTP: got %d, want 201", code)
		}
	}

	// Every query streams through the gateway and reaches full
	// completeness over the shared mesh.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var list []QueryInfo
		getJSON(t, ts, "/v1/queries", &list)
		if len(list) != queries {
			t.Fatalf("list has %d queries, want %d", len(list), queries)
		}
		full := 0
		for _, qi := range list {
			if qi.Completeness == peers {
				full++
			}
		}
		if full == queries {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d queries at full completeness", full, queries)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// All 64 streams concurrently: every query serves live windows.
	results := make(chan []WindowResult, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/queries/q%02d/results?limit=2", ts.URL, i)
			results <- readWindows(t, url, 2)
		}(i)
	}
	wg.Wait()
	close(results)
	streams := 0
	for ws := range results {
		if len(ws) != 2 {
			t.Fatalf("a stream served %d windows, want 2", len(ws))
		}
		if ws[1].Window <= ws[0].Window {
			t.Fatalf("stream windows not advancing: %d then %d", ws[0].Window, ws[1].Window)
		}
		streams++
	}
	if streams != queries {
		t.Fatalf("%d streams completed, want %d", streams, queries)
	}

	// Reconnect catch-up for one tenant comes from the cache: instant,
	// and the query's attributable federation traffic does not move.
	first := readWindows(t, ts.URL+"/v1/queries/q07/results?limit=3", 3)
	lastSeen := first[len(first)-1].Window
	time.Sleep(900 * time.Millisecond) // two more windows land while disconnected

	ctlBefore, _ := fed.Fab.QueryTraffic("q07")
	start := time.Now()
	catch := readWindows(t, fmt.Sprintf("%s/v1/queries/q07/results?from=%d&limit=2", ts.URL, lastSeen+1), 2)
	elapsed := time.Since(start)
	ctlAfter, _ := fed.Fab.QueryTraffic("q07")

	if len(catch) != 2 {
		t.Fatalf("catch-up served %d windows, want 2", len(catch))
	}
	if catch[0].Window != lastSeen+1 && catch[0].Window != lastSeen+2 {
		t.Fatalf("catch-up resumed at window %d after %d", catch[0].Window, lastSeen)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("catch-up took %v; cached windows must not wait for new reports", elapsed)
	}
	if ctlAfter != ctlBefore {
		t.Fatalf("cache catch-up moved federation traffic for q07: %d -> %d", ctlBefore, ctlAfter)
	}
}
