// Package repro's top-level benchmarks regenerate every data-bearing table
// and figure of "Wide-Scale Data Stream Management" (Logothetis & Yocum,
// USENIX ATC 2008), one benchmark per figure, plus ablation benches for the
// design choices DESIGN.md calls out.
//
// Benchmarks run the Quick experiment configuration by default so that
// `go test -bench=. -benchmem` finishes in minutes; set -figscale=full to
// run the paper-scale parameters. Headline metrics are attached via
// b.ReportMetric, and the full tables print once per benchmark under -v.
package repro

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/ops"
	"repro/internal/plan"
	rtpkg "repro/internal/runtime"
	"repro/internal/runtime/livert"
	"repro/internal/runtime/netrt"
	"repro/internal/runtime/simrt"
	"repro/internal/treesim"
	"repro/internal/tslist"
	"repro/internal/tuple"
	"repro/internal/vclock"
	"repro/internal/wire"
	"repro/internal/workload"
)

var figScale = flag.String("figscale", "quick", "experiment scale: quick or full")

func benchOptions() experiments.Options {
	return experiments.Options{Seed: 42, Quick: *figScale != "full"}
}

var printOnce sync.Map

// runFigure executes a figure's runner b.N times (the work is dominated by
// the first run; subsequent runs re-use nothing, keeping timings honest)
// and prints its table once.
func runFigure(b *testing.B, id string) {
	b.Helper()
	run, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = run(benchOptions())
	}
	if _, dup := printOnce.LoadOrStore(id, true); !dup && tab != nil {
		var w io.Writer = os.Stdout
		tab.Print(w)
	}
}

func BenchmarkFigure1(b *testing.B)  { runFigure(b, "fig1") }
func BenchmarkFigure9(b *testing.B)  { runFigure(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { runFigure(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { runFigure(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { runFigure(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { runFigure(b, "fig13") }
func BenchmarkFigure14(b *testing.B) { runFigure(b, "fig14") }
func BenchmarkFigure15(b *testing.B) { runFigure(b, "fig15") }
func BenchmarkFigure16(b *testing.B) { runFigure(b, "fig16") }
func BenchmarkFigure17(b *testing.B) { runFigure(b, "fig17") }
func BenchmarkFigure18(b *testing.B) { runFigure(b, "fig18") }

// --- Ablations ---

// ablationRun executes a short failure scenario with the given config and
// returns steady-state completeness (% of live peers).
func ablationRun(b *testing.B, cfg mortar.Config, d int, failFrac float64) float64 {
	b.Helper()
	sim := eventsim.New(42)
	rng := rand.New(rand.NewSource(42))
	p := netem.PaperTopology(170)
	topo := netem.GenerateTransitStub(p, rng)
	net := netem.New(sim, topo)
	fab, err := mortar.NewFabric(simrt.New(net), nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	meta := mortar.QueryMeta{
		Name:      "abl",
		Seq:       1,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: sim.Now(),
	}
	pts := randomPoints(170, rng)
	def, err := fab.Compile(meta, nil, pts, 16, d)
	if err != nil {
		b.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 170; i++ {
		i := i
		phase := time.Duration(rng.Int63n(int64(time.Second)))
		sim.After(phase, func() {
			sim.Every(time.Second, func() { fab.Inject(i, tuple.Raw{Vals: []float64{1}}) })
		})
	}
	var counts []float64
	fab.OnResult = func(r mortar.Result) {
		if sim.Now() > 45*time.Second {
			counts = append(counts, float64(r.Count))
		}
	}
	sim.RunFor(20 * time.Second)
	want := int(failFrac * 170)
	down := 0
	for down < want {
		v := 1 + rng.Intn(169)
		if !fab.Down(v) {
			fab.SetDown(v, true)
			down++
		}
	}
	sim.RunFor(40 * time.Second)
	return metrics.Completeness(int(metrics.Mean(counts)), fab.LiveCount())
}

func randomPoints(n int, rng *rand.Rand) []cluster.Point {
	out := make([]cluster.Point, n)
	for i := range out {
		out[i] = cluster.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	return out
}

// BenchmarkAblationRoutingStages measures how much each stage of the
// multipath policy (same-tree, up*, flex, flex-down) contributes to
// completeness under 30% failures.
func BenchmarkAblationRoutingStages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for stage := 1; stage <= 4; stage++ {
			cfg := mortar.DefaultConfig()
			cfg.MaxStage = stage
			c := ablationRun(b, cfg, 4, 0.3)
			b.ReportMetric(c, "completeness%/stage"+string(rune('0'+stage)))
		}
	}
}

// BenchmarkAblationTTLDown sweeps the flex-down TTL the paper fixes at 3.
func BenchmarkAblationTTLDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ttl := range []int{0, 1, 3, 6} {
			cfg := mortar.DefaultConfig()
			cfg.TTLDownMax = ttl
			c := ablationRun(b, cfg, 4, 0.3)
			b.ReportMetric(c, "completeness%/ttl"+string(rune('0'+ttl)))
		}
	}
}

// BenchmarkAblationHeartbeat sweeps the heartbeat period (paper: 2s);
// faster detection recovers sooner but costs control traffic.
func BenchmarkAblationHeartbeat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, period := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
			cfg := mortar.DefaultConfig()
			cfg.HeartbeatPeriod = period
			c := ablationRun(b, cfg, 4, 0.3)
			b.ReportMetric(c, "completeness%/hb"+period.String())
		}
	}
}

// BenchmarkAblationSiblings compares derived sibling trees against fully
// random sibling sets: random siblings have more path diversity but lose
// the primary's clustering (Figure 17's tension).
func BenchmarkAblationSiblings(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	sim := eventsim.New(1)
	topo := netem.GenerateTransitStub(netem.PaperTopology(179), rng)
	net := netem.New(sim, topo)
	hosts := topo.Hosts()
	oneWay := plan.LatencyFunc(func(x, y int) time.Duration { return net.Latency(hosts[x], hosts[y]) })
	pts := randomPoints(179, rng)
	for i := 0; i < b.N; i++ {
		var derived, random float64
		const trials = 10
		for k := 0; k < trials; k++ {
			primary := plan.BuildPrimary(pts, 0, 8, rng)
			sib := plan.DeriveSibling(primary, rng)
			rnd := plan.BuildRandom(179, 0, 8, rng)
			derived += float64(plan.Percentile(plan.LatencyToRoot(sib, oneWay), 90)) / float64(time.Millisecond)
			random += float64(plan.Percentile(plan.LatencyToRoot(rnd, oneWay), 90)) / float64(time.Millisecond)
		}
		b.ReportMetric(derived/trials, "p90ms/derived")
		b.ReportMetric(random/trials, "p90ms/random")
	}
}

// BenchmarkAblationNetDistAlpha sweeps the netDist EWMA weight (paper:
// alpha = 10% "worked well in practice").
func BenchmarkAblationNetDistAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0.02, 0.1, 0.5} {
			cfg := mortar.DefaultConfig()
			cfg.NetDistAlpha = alpha
			c := ablationRun(b, cfg, 4, 0.3)
			b.ReportMetric(c, fmt.Sprintf("completeness%%/alpha%.2f", alpha))
		}
	}
}

// --- Live runtime ---

// BenchmarkLiveThroughput measures end-to-end tuple throughput of a
// federation running on the goroutine-per-peer live runtime: every
// injected tuple crosses a peer mailbox, is windowed, and its summaries
// traverse the concurrent in-process transport toward the root. The timed
// section ends only after a drain barrier clears every mailbox, so the
// metric reflects tuples processed, not merely enqueued.
func BenchmarkLiveThroughput(b *testing.B) {
	const peers = 8
	rt := livert.New(peers, livert.Options{
		Seed:     1,
		MinDelay: 50 * time.Microsecond,
		MaxDelay: 200 * time.Microsecond,
	})
	cfg := mortar.DefaultConfig()
	cfg.HeartbeatPeriod = 100 * time.Millisecond
	cfg.MinTimeout = 20 * time.Millisecond
	fab, err := mortar.NewFabric(rt, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var results atomic.Uint64
	fab.OnResult = func(mortar.Result) { results.Add(1) }
	rng := rand.New(rand.NewSource(2))
	meta := mortar.QueryMeta{
		Name:      "bench",
		Seq:       1,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 100 * time.Millisecond, Slide: 100 * time.Millisecond},
		Root:      0,
		IssuedSim: rt.Clock(0).Now(),
	}
	def, err := fab.Compile(meta, nil, randomPoints(peers, rng), 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		b.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the install multicast wire the trees
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.Inject(i%peers, tuple.Raw{Vals: []float64{1}})
	}
	// Drain barrier: mailboxes are FIFO, so once these closures run every
	// injected tuple has been windowed.
	for i := 0; i < peers; i++ {
		rtpkg.ExecWait(rt, i, func() {})
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	time.Sleep(400 * time.Millisecond) // let in-flight windows evict and report
	rt.Shutdown()
	b.ReportMetric(float64(results.Load()), "results")
}

// --- Codec microbenchmarks (the per-message cost on the hot summary path) ---

// benchEnvelope is a representative data-plane envelope: a merged summary
// striped over 4 trees, as every interior operator transmits each slide.
func benchEnvelope() *wire.Envelope {
	return &wire.Envelope{
		S: tuple.Summary{
			Query:  "cpu-sum",
			Index:  tuple.Index{TB: 41 * time.Second, TE: 42 * time.Second},
			Value:  float64(17.5),
			Age:    120 * time.Millisecond,
			Count:  42,
			Hops:   3,
			Levels: []int16{2, -1, 3, 0},
		},
		Tree:    1,
		TTLDown: 1,
		SentAt:  95 * time.Second,
	}
}

func BenchmarkWireEncodeEnvelope(b *testing.B) {
	var msg any = benchEnvelope() // boxed once: the loop measures encoding, not conversion
	w := wire.GetBuffer()
	defer wire.PutBuffer(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := wire.EncodeMessage(w, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeEnvelope(b *testing.B) {
	var w wire.Buffer
	if err := wire.EncodeMessage(&w, benchEnvelope()); err != nil {
		b.Fatal(err)
	}
	buf := w.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeMessage(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeHeartbeat(b *testing.B) {
	var msg any = wire.Heartbeat{Seq: 123456, Hash: 0xfeedface}
	w := wire.GetBuffer()
	defer wire.PutBuffer(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := wire.EncodeMessage(w, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecodeHeartbeat decodes into a reused struct — the shape
// every peer's heartbeat receive path runs per beat. The coordinate slice
// is allocated once and reused, so steady state is allocation-free.
func BenchmarkWireDecodeHeartbeat(b *testing.B) {
	var w wire.Buffer
	if err := wire.EncodeMessage(&w, wire.Heartbeat{
		Seq: 123456, Hash: 0xfeedface,
		Coord: []float64{1.5, -2.25, 0.75}, CoordErr: 0.2,
	}); err != nil {
		b.Fatal(err)
	}
	buf := w.Bytes()
	var hb wire.Heartbeat
	if err := wire.DecodeHeartbeatInto(buf, &hb); err != nil { // pre-size Coord
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.DecodeHeartbeatInto(buf, &hb); err != nil {
			b.Fatal(err)
		}
	}
	if hb.Seq != 123456 || len(hb.Coord) != 3 {
		b.Fatalf("decoded %+v", hb)
	}
}

func BenchmarkWireInstallRoundTrip(b *testing.B) {
	m := wire.Install{
		Meta: wire.QueryMeta{
			Name: "bench", Seq: 3, OpName: "sum",
			Window: tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		},
		Members: map[int]wire.Neighbors{},
		Forward: map[int][]int{},
	}
	for p := 0; p < 16; p++ {
		m.Members[p] = wire.Neighbors{
			Parents:  []int{p - 1, (p + 7) % 16},
			Children: [][]int{{p + 1}, nil},
			Levels:   []int{p % 5, (p + 1) % 5},
		}
		if p%4 == 0 {
			m.Forward[p] = []int{p + 1, p + 2}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var w wire.Buffer
		if err := wire.EncodeMessage(&w, m); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeMessage(w.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fragmentation layer (the netrt reliable large-message path) ---

// benchFragment measures split + reassemble throughput for one frame size:
// the CPU cost of moving a frame of that size through netrt's fragmenter
// and bounded reassembler, sockets excluded.
func benchFragment(b *testing.B, size int) {
	payload := make([]byte, size)
	rng := rand.New(rand.NewSource(9))
	rng.Read(payload)
	ra := netrt.NewReassembler(netrt.ReasmOptions{MaxMessage: size + 1024, MaxBytes: 2 * (size + 1024)})
	now := time.Now()
	const mtuPayload = 1400 - 64
	b.SetBytes(int64(size))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frags := netrt.SplitFragments(uint64(i+1), payload, mtuPayload)
		var msg []byte
		for _, f := range frags {
			m, err := ra.Add(0, f, now)
			if err != nil {
				b.Fatal(err)
			}
			if m != nil {
				msg = m
			}
		}
		if len(msg) != size {
			b.Fatalf("reassembled %d of %d bytes", len(msg), size)
		}
	}
}

func BenchmarkFragmentReassemble4KB(b *testing.B)  { benchFragment(b, 4<<10) }
func BenchmarkFragmentReassemble64KB(b *testing.B) { benchFragment(b, 64<<10) }
func BenchmarkFragmentReassemble1MB(b *testing.B)  { benchFragment(b, 1<<20) }

// benchHeartbeatSend measures netrt.Send of a single-datagram heartbeat —
// the hot control-plane path — over real loopback sockets, with the given
// pacing rate. Comparing the paced and unpaced variants isolates the token
// bucket's overhead on traffic that never needs it.
func benchHeartbeatSend(b *testing.B, pace int) {
	rts, _, err := netrt.NewGroup([][]int{{0, 1}}, netrt.Options{Seed: 1, Pace: pace})
	if err != nil {
		b.Fatal(err)
	}
	rt := rts[0]
	defer rt.Shutdown()
	rt.Handle(1, func(int, any, int) {})
	hb := wire.Heartbeat{Seq: 1, Hash: 0xfeedface}
	var w wire.Buffer
	if err := wire.EncodeMessage(&w, hb); err != nil {
		b.Fatal(err)
	}
	frame := &rtpkg.Frame{Payload: hb, Bytes: w.Bytes()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Send(0, 1, rtpkg.ClassControl, w.Len(), frame)
	}
}

func BenchmarkNetrtHeartbeatSendPaced(b *testing.B)   { benchHeartbeatSend(b, 8<<20) }
func BenchmarkNetrtHeartbeatSendUnpaced(b *testing.B) { benchHeartbeatSend(b, -1) }

// BenchmarkNetrtEnvelopeSend measures the full envelope send path — header
// encode, frame append, pacer hand-off, and the UDP write — and gates it at
// zero allocations per send. The remote peer is a bound socket nobody
// reads: -benchmem counts allocations process-wide, so a receiving runtime
// would charge its decode path to this benchmark.
func BenchmarkNetrtEnvelopeSend(b *testing.B) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	dir := []string{"127.0.0.1:0", sink.LocalAddr().String()}
	rt, err := netrt.New(dir, []int{0}, netrt.Options{Seed: 1, Pace: -1})
	if err != nil {
		b.Fatal(err)
	}
	env := benchEnvelope()
	var w wire.Buffer
	if err := wire.EncodeMessage(&w, env); err != nil {
		b.Fatal(err)
	}
	frame := &rtpkg.Frame{Payload: env, Bytes: w.Bytes()}
	// Pre-warm the buffer pool past the pacer's queue depth: the bench loop
	// outruns the socket writer, so that many buffers can be in flight at
	// once, and a cold pool would charge their one-time allocation to the
	// steady-state path under measurement.
	warm := make([]*wire.Buffer, 12<<10)
	for i := range warm {
		warm[i] = wire.GetBuffer()
		warm[i].Reserve(512)
	}
	for _, pw := range warm {
		wire.PutBuffer(pw)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Send(0, 1, rtpkg.ClassData, w.Len(), frame)
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	rt.Shutdown()
	ns := rt.NetStats()
	b.ReportMetric(float64(b.N)/elapsed, "msgs/s")
	b.ReportMetric(float64(ns.Datagrams)/elapsed, "datagrams/s")
}

// BenchmarkNetrtHeartbeatSendCoalesced is the paced heartbeat bench with
// train coalescing on: small frames to the same remote socket batch into
// shared datagrams, so datagrams/frame drops below one.
func BenchmarkNetrtHeartbeatSendCoalesced(b *testing.B) {
	rts, _, err := netrt.NewGroup([][]int{{0, 1}}, netrt.Options{Seed: 1, Pace: 8 << 20, Coalesce: true})
	if err != nil {
		b.Fatal(err)
	}
	rt := rts[0]
	defer rt.Shutdown()
	rt.Handle(1, func(int, any, int) {})
	hb := wire.Heartbeat{Seq: 1, Hash: 0xfeedface}
	var w wire.Buffer
	if err := wire.EncodeMessage(&w, hb); err != nil {
		b.Fatal(err)
	}
	frame := &rtpkg.Frame{Payload: hb, Bytes: w.Bytes()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Send(0, 1, rtpkg.ClassControl, w.Len(), frame)
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	time.Sleep(20 * time.Millisecond) // let the last pending train flush
	ns := rt.NetStats()
	frames := ns.TrainFrames + (ns.Datagrams - ns.Trains) // non-train datagrams carry one frame each
	if frames > 0 {
		b.ReportMetric(float64(ns.Datagrams)/float64(frames), "datagrams/frame")
	}
	b.ReportMetric(float64(b.N)/elapsed, "msgs/s")
	b.ReportMetric(float64(ns.Datagrams)/elapsed, "datagrams/s")
}

// --- Microbenchmarks of the hot data structures ---

func BenchmarkTSListInsert(b *testing.B) {
	l := tslist.New(func(a, c tuple.Value) tuple.Value {
		if a == nil {
			return c
		}
		if c == nil {
			return a
		}
		return a.(float64) + c.(float64)
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := time.Duration(i%64) * time.Second
		l.Insert(tuple.Summary{
			Index: tuple.Index{TB: tb, TE: tb + time.Second},
			Value: float64(1), Count: 1,
		}, 0, time.Duration(i+1)*time.Second)
		if l.Len() > 128 {
			l.PopAll()
		}
	}
}

func BenchmarkDynamicStripingSim(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := treesim.Params{Nodes: 10000, BF: 32, D: 4, LinkFail: 0.2, Discipline: treesim.DynamicStriping}
	for i := 0; i < b.N; i++ {
		treesim.Completeness(p, rng)
	}
}

func BenchmarkPlanPrimary680(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(680, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan.BuildPrimary(pts, 0, 16, rng)
	}
}

func BenchmarkClockSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := vclock.PlanetLab(1)
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}

// --- Replanning ---

// BenchmarkReplanDecision measures the drift monitor's per-poll work for
// one 200-peer query: score the deployed tree set under the current
// embedding, build a fresh candidate, and score it — the cost paid every
// monitor interval whether or not a replan fires.
func BenchmarkReplanDecision(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(200, rng)
	deployed := plan.Build(pts, 0, 16, 4, rng)
	model := plan.CoordModel{Coords: pts}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cur := plan.Quality(model, deployed)
		cand := plan.Build(pts, 0, 16, 4, rng)
		if plan.Quality(model, cand) <= 0 || cur <= 0 {
			b.Fatal("degenerate quality")
		}
	}
}

// BenchmarkReplanCycleSim measures one full epoch migration on the
// deterministic backend: install the next epoch of a live 40-peer query,
// run until every member acks, completeness catches up, the root retires
// the old epoch, and its drained state is gone — the end-to-end cost of
// one make-before-break replan cycle (reported in simulated events, timed
// in real ns).
func BenchmarkReplanCycleSim(b *testing.B) {
	rt := simrt.NewPaper(77, 40, simrt.TopoOptions{Stubs: 8, Transits: 2})
	fab, err := mortar.NewFabric(rt, nil, mortar.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(40, rng)
	issue := rt.Now()
	mk := func(seq uint64, epoch uint32) *mortar.QueryDef {
		meta := mortar.QueryMeta{
			Name: "cyc", Seq: seq, Epoch: epoch, OpName: "sum",
			Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
			Root:      0,
			IssuedSim: issue,
		}
		def, err := fab.Compile(meta, nil, pts, 8, 2)
		if err != nil {
			b.Fatal(err)
		}
		return def
	}
	if err := fab.Install(0, mk(1, 0)); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		i := i
		rt.After(time.Duration(i)*25*time.Millisecond, func() {
			rt.Every(time.Second, func() { fab.Inject(i, tuple.Raw{Vals: []float64{1}}) })
		})
	}
	rt.RunFor(15 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch := uint32(i + 1)
		if err := fab.Install(0, mk(uint64(i+2), epoch)); err != nil {
			b.Fatal(err)
		}
		retireTarget := uint64(i + 1)
		for step := 0; fab.Stats.EpochsRetired.Load() < retireTarget && step < 120; step++ {
			rt.RunFor(time.Second)
		}
		if fab.Stats.EpochsRetired.Load() < retireTarget {
			b.Fatal("migration did not complete")
		}
		rt.RunFor(10 * time.Second) // drain the retired epoch
	}
}

// BenchmarkControlBytesPerQuery records the paper's sharing curve (Fig 13)
// as a CI artifact: steady-state control bytes per peer per simulated
// second with 1, 4, 16, and 64 count queries over one shared heartbeat
// mesh. Heartbeat edges are the union of every query's tree edges, so the
// per-peer figure must saturate toward the complete graph instead of
// growing linearly in query count: the q64 metric landing under 8x the q1
// metric is the sub-linear acceptance bound the federation test
// (TestControlBytesSubLinear) enforces.
func BenchmarkControlBytesPerQuery(b *testing.B) {
	const hosts = 16
	for _, queries := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("q%d", queries), func(b *testing.B) {
			var perPeerSec float64
			for i := 0; i < b.N; i++ {
				var src strings.Builder
				for q := 0; q < queries; q++ {
					fmt.Fprintf(&src, "query q%02d as count() from sensors window time 1s slide 1s trees 4 bf 4\n", q)
				}
				prog, err := msl.Parse(src.String())
				if err != nil {
					b.Fatal(err)
				}
				sim := eventsim.New(31)
				rng := rand.New(rand.NewSource(31))
				p := netem.PaperTopology(hosts)
				p.Stubs = 6
				p.Transits = 2
				net := netem.New(sim, netem.GenerateTransitStub(p, rng))
				fed, err := federation.New(net, prog, rng)
				if err != nil {
					b.Fatal(err)
				}
				fed.StartSensors(time.Second, func(int) tuple.Raw { return tuple.Raw{Vals: []float64{1}} }, rng)
				const settle = 30 * time.Second
				const window = 60 * time.Second
				fed.Sim.RunUntil(settle)
				before := fed.Fab.Stats.ControlBytes.Load()
				fed.Sim.RunUntil(settle + window)
				delta := fed.Fab.Stats.ControlBytes.Load() - before
				perPeerSec = float64(delta) / float64(hosts) / window.Seconds()
			}
			b.ReportMetric(perPeerSec, "ctl_bytes/peer/s")
		})
	}
}

// --- Data-plane fast path (batched ingest, zero-alloc merge and encode) ---

// BenchmarkSummaryEncode measures encoding one summary tuple into a pooled
// wire buffer — the per-envelope transmit cost every interior operator pays
// each slide. The steady state must be allocation-free; CI gates allocs/op
// at 0 via benchcompare -alloc-match.
func BenchmarkSummaryEncode(b *testing.B) {
	s := tuple.Summary{
		Query:  "cpu-sum",
		Index:  tuple.Index{TB: 41 * time.Second, TE: 42 * time.Second},
		Value:  float64(17.5), // boxed once; the loop measures encoding
		Age:    120 * time.Millisecond,
		Count:  42,
		Hops:   3,
		Levels: []int16{2, -1, 3, 0},
	}
	w := wire.GetBuffer()
	defer wire.PutBuffer(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := wire.EncodeSummary(w, s, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSListInsertMerge drives a time-space list through its steady
// state: every summary lands on a fresh slide index, a second copy merges
// into it in place, and expired entries recycle through the list's pool.
// With an in-place combiner (histogram fold) the loop must not allocate;
// CI gates allocs/op at 0 via benchcompare -alloc-match.
func BenchmarkTSListInsertMerge(b *testing.B) {
	l := tslist.New(ops.CombineInPlaceNilAware(ops.Entropy{}))
	var ctr tslist.Counters
	l.SetCounters(&ctr)
	s := tuple.Summary{
		Value:  map[string]float64{"a": 1, "b": 2, "c": 3},
		Count:  1,
		Levels: []int16{1, -1, 2, 0},
	}
	const live = 64 // indices in flight before expiry
	step := func(i int) {
		tb := time.Duration(i) * time.Second
		s.Index = tuple.Index{TB: tb, TE: tb + time.Second}
		l.Insert(s, tb, tb+live*time.Second)
		l.Insert(s, tb, tb+live*time.Second) // second arrival: in-place merge
		for _, e := range l.PopExpired(tb) {
			l.Recycle(e)
		}
	}
	for i := 0; i < 2*live; i++ {
		step(i) // warm the entry pool and the combiner's key set
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(2*live + i)
	}
	b.StopTimer()
	if got := l.Validate(); got != nil {
		b.Fatal(got)
	}
	if ctr.Merges.Load() == 0 {
		b.Fatal("no merges recorded")
	}
}

// BenchmarkTupleIngestBatch is BenchmarkLiveThroughput on the batched fast
// path: 64 tuples per InjectBatch, one mailbox hop and one lock acquisition
// per batch instead of per tuple. Batch slices cycle through the fabric's
// pool (GetRawBatch → InjectBatch → recycled on absorption), exactly as the
// replay driver does, so the reported allocs/op are the real steady-state
// driver-side cost.
func BenchmarkTupleIngestBatch(b *testing.B) {
	const peers = 8
	const batch = 64
	rt := livert.New(peers, livert.Options{
		Seed:     1,
		MinDelay: 50 * time.Microsecond,
		MaxDelay: 200 * time.Microsecond,
	})
	cfg := mortar.DefaultConfig()
	cfg.HeartbeatPeriod = 100 * time.Millisecond
	cfg.MinTimeout = 20 * time.Millisecond
	fab, err := mortar.NewFabric(rt, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var results atomic.Uint64
	fab.OnResult = func(mortar.Result) { results.Add(1) }
	rng := rand.New(rand.NewSource(2))
	meta := mortar.QueryMeta{
		Name:      "bench",
		Seq:       1,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 100 * time.Millisecond, Slide: 100 * time.Millisecond},
		Root:      0,
		IssuedSim: rt.Clock(0).Now(),
	}
	def, err := fab.Compile(meta, nil, randomPoints(peers, rng), 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		b.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the install multicast wire the trees
	vals := []float64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for injected, turn := 0, 0; injected < b.N; turn++ {
		n := batch
		if left := b.N - injected; left < n {
			n = left
		}
		raws := fab.GetRawBatch(n)
		for i := 0; i < n; i++ {
			raws = append(raws, tuple.Raw{Vals: vals})
		}
		fab.InjectBatch(turn%peers, raws)
		injected += n
		if turn%(4*peers) == 4*peers-1 {
			// Periodic drain barrier: an unthrottled post loop would grow
			// the mailboxes without bound and starve the batch pool, which
			// measures allocator behaviour, not the steady-state ingest
			// path a paced driver exercises.
			for i := 0; i < peers; i++ {
				rtpkg.ExecWait(rt, i, func() {})
			}
		}
	}
	for i := 0; i < peers; i++ {
		rtpkg.ExecWait(rt, i, func() {})
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	if got := fab.Stats.TuplesIngested.Load(); got < uint64(b.N) {
		b.Fatalf("ingested %d of %d tuples", got, b.N)
	}
	time.Sleep(400 * time.Millisecond) // let in-flight windows evict and report
	rt.Shutdown()
	b.ReportMetric(float64(results.Load()), "results")
}

// BenchmarkSaturationReplay answers the headline data-plane question: what
// aggregate tuple rate can a live 8-peer federation sustain? The replay
// driver ramps the offered rate (doubling, then binary search) against two
// sinks over the same fabric — the batched fast path (InjectBatch) and the
// seed per-tuple path (Inject per raw) — and reports both saturation points
// plus their ratio. A trial passes when the fabric absorbs the offered load
// at >=90% of the target rate including drain time, i.e. before ingest
// latency degrades into unbounded mailbox backlog.
func BenchmarkSaturationReplay(b *testing.B) {
	const peers = 8
	rt := livert.New(peers, livert.Options{
		Seed:     1,
		MinDelay: 50 * time.Microsecond,
		MaxDelay: 200 * time.Microsecond,
	})
	defer rt.Shutdown()
	cfg := mortar.DefaultConfig()
	cfg.HeartbeatPeriod = 100 * time.Millisecond
	cfg.MinTimeout = 20 * time.Millisecond
	fab, err := mortar.NewFabric(rt, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	meta := mortar.QueryMeta{
		Name:      "bench",
		Seq:       1,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 100 * time.Millisecond, Slide: 100 * time.Millisecond},
		Root:      0,
		IssuedSim: rt.Clock(0).Now(),
	}
	def, err := fab.Compile(meta, nil, randomPoints(peers, rng), 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		b.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	all := make([]int, peers)
	for i := range all {
		all[i] = i
	}
	const trialDur = 200 * time.Millisecond
	attempt := func(sink workload.BatchSink, pooled bool, rate float64) bool {
		r := &workload.Replay{Peers: all, Rate: rate, Batch: 64}
		if pooled {
			r.NewBatch = fab.GetRawBatch
		}
		start := time.Now()
		injected, _ := r.Run(trialDur, sink)
		for i := 0; i < peers; i++ {
			rtpkg.ExecWait(rt, i, func() {}) // drain: FIFO mailboxes
		}
		sustained := float64(injected) / time.Since(start).Seconds()
		time.Sleep(20 * time.Millisecond) // settle before the next trial
		return sustained >= 0.9*rate
	}
	trial := func(sink workload.BatchSink, pooled bool) workload.Trial {
		return func(rate float64) bool {
			// One retry: a single scheduler hiccup must not clip the search.
			return attempt(sink, pooled, rate) || attempt(sink, pooled, rate)
		}
	}
	perTupleSink := func(peer int, raws []tuple.Raw) {
		for _, raw := range raws {
			fab.Inject(peer, raw) // the seed path: one mailbox hop per tuple
		}
	}
	var batched, perTuple float64
	for i := 0; i < b.N; i++ {
		perTuple = workload.FindMaxRate(100_000, 10, 4, trial(perTupleSink, false))
		batched = workload.FindMaxRate(100_000, 10, 4, trial(fab.InjectBatch, true))
	}
	b.ReportMetric(batched, "batched-tuples/s")
	b.ReportMetric(perTuple, "pertuple-tuples/s")
	if perTuple > 0 {
		b.ReportMetric(batched/perTuple, "speedup")
	}
	b.Logf("saturation: batched %.0f tuples/s, per-tuple %.0f tuples/s", batched, perTuple)
}

// BenchmarkMultiHopCoalescing measures what the upstream staging path
// (hold-and-merge plus wire-v4 envelope batches) saves on a deep overlay
// over real sockets: 64 peers in bf-4 trees (three hops leaf to root),
// three co-hosted tenant queries planned onto the same trees — the
// multi-tenant shape where one next-hop receives several summaries per
// window. The same federation runs with staging on and with the
// send-immediately ablation; the bench reports the per-query-window
// summary byte cost (summary-bytes/window, lower is better, gated in CI
// against the previous run) and the frame reduction, and fails outright
// if coalescing moves less than 3x fewer data frames — the tentpole's
// headline claim.
func BenchmarkMultiHopCoalescing(b *testing.B) {
	const (
		peers   = 64
		bf      = 4
		trees   = 2
		tenants = 3
		slide   = 250 * time.Millisecond
		warmup  = 1500 * time.Millisecond
		measure = 3 * time.Second
	)
	run := func(hold time.Duration) (frames, bytes uint64) {
		hosts := make([]int, peers)
		for i := range hosts {
			hosts[i] = i
		}
		rts, _, err := netrt.NewGroup([][]int{hosts}, netrt.Options{Seed: 7, PeersPerSocket: 8})
		if err != nil {
			b.Fatal(err)
		}
		rt := rts[0]
		defer rt.Shutdown()
		cfg := mortar.DefaultConfig()
		cfg.HeartbeatPeriod = 500 * time.Millisecond
		cfg.SummaryHold = hold
		fab, err := mortar.NewFabric(rt, nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		coords := randomPoints(peers, rng)
		for q := 0; q < tenants; q++ {
			meta := mortar.QueryMeta{
				Name:      fmt.Sprintf("mh%d", q),
				Seq:       1,
				OpName:    "sum",
				Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: slide, Slide: slide},
				Root:      0,
				IssuedSim: rt.Clock(0).Now(),
			}
			// One pinned planning rng per query: identical trees, so
			// co-hosted tenants share next-hops (their summaries can ride
			// one frame) exactly as a shared-plan serving deployment does.
			def, err := fab.CompileWith(meta, nil, coords, bf, trees, rand.New(rand.NewSource(42)))
			if err != nil {
				b.Fatal(err)
			}
			if err := fab.Install(0, def); err != nil {
				b.Fatal(err)
			}
		}
		vals := []float64{1}
		for i := 0; i < peers; i++ {
			i := i
			rt.Clock(i).Every(100*time.Millisecond, func() {
				fab.Inject(i, tuple.Raw{Vals: vals})
			})
		}
		time.Sleep(warmup)
		f0, b0 := fab.Stats.DataFrames.Load(), fab.Stats.DataBytes.Load()
		time.Sleep(measure)
		return fab.Stats.DataFrames.Load() - f0, fab.Stats.DataBytes.Load() - b0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offFrames, _ := run(-1)
		onFrames, onBytes := run(100 * time.Millisecond)
		if onFrames == 0 || offFrames == 0 {
			b.Fatalf("no data frames measured: on=%d off=%d", onFrames, offFrames)
		}
		windows := float64(tenants) * measure.Seconds() / slide.Seconds()
		ratio := float64(offFrames) / float64(onFrames)
		b.ReportMetric(float64(onBytes)/windows, "summary-bytes/window")
		b.ReportMetric(ratio, "frame-reduction-x")
		b.Logf("multi-hop: %d frames unstaged, %d staged (%.1fx), %.0f summary bytes/window",
			offFrames, onFrames, ratio, float64(onBytes)/windows)
		if ratio < 3 {
			b.Fatalf("coalescing reduced frames only %.2fx over %d hops, want >= 3x", ratio, 3)
		}
	}
}
